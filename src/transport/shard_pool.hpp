// N-shard reactor pool (DESIGN.md §13; ROADMAP item 1).
//
// Modeled on ndn-dpdk's RxLoop/RxProc split: the pool owns N Reactors —
// one single-threaded universe per shard — and either runs each on its own
// thread (Mode::threaded, production and benches) or leaves all of them to
// be pumped by one harness thread in a fixed interleaving order
// (Mode::manual, the deterministic test mode: with a shared VirtualClock
// the whole N-shard system replays bit-identically).
//
// Each shard's Reactor carries a named affinity domain ("shard0",
// "shard1", ...), so a cross-shard call trips FLEXRIC_ASSERT_AFFINITY with
// the offended shard's name in the diagnostic, and the static analyzer's
// @affine(shard) vocabulary maps onto real runtime domains.
//
// The only sanctioned way into a running shard from outside is post():
// an SPSC injector ring (this pool's owner thread is the single producer)
// plus an eventfd wake. Everything else — RAN-DB merge, xApp fan-out,
// stats — flows shard->home through the rings owned by ShardedE2Server.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/shard_stats.hpp"
#include "common/spsc_ring.hpp"
#include "transport/reactor.hpp"
#include "transport/wakeup.hpp"

namespace flexric {

// The pool itself (start/stop/post/pump) is owned by the home thread that
// built it; only the per-shard Reactors it hands out are shard-affine.
// @affine(reactor)
class ShardPool {
 public:
  enum class Mode {
    manual,    ///< no threads; the owner pumps all loops in fixed order
    threaded,  ///< one thread per shard running Reactor::run()
  };

  /// Affinity domains are string literals, so the shard count is capped by
  /// the size of the static name table.
  static constexpr std::uint32_t kMaxShards = 16;
  [[nodiscard]] static const char* domain_name(std::uint32_t shard) noexcept;

  /// `clock` (optional) becomes the time source of every shard reactor —
  /// the deterministic-test configuration. Keep it alive for the pool's
  /// lifetime.
  ShardPool(std::uint32_t shards, Mode mode,
            const VirtualClock* clock = nullptr);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] Reactor& reactor(std::uint32_t shard) noexcept {
    return *shards_[shard].reactor;
  }
  [[nodiscard]] const char* domain(std::uint32_t shard) const noexcept {
    return shards_[shard].reactor->affinity().domain();
  }

  /// Threaded mode: launch one thread per shard, each running its loop.
  /// Manual mode: no-op.
  void start();
  /// Threaded mode: stop every loop (via its own thread) and join. Safe to
  /// call twice; the destructor calls it. Manual mode: no-op.
  void stop();
  [[nodiscard]] bool running() const noexcept { return started_; }

  /// Run `fn` on `shard`'s loop thread. Owner-thread only (the injector
  /// ring is SPSC; the affinity guard enforces the single-producer end).
  /// Errc::capacity when the shard's injector ring is full — the caller
  /// must back off and retry, the call is never silently dropped.
  Status post(std::uint32_t shard, std::function<void()> fn);

  /// Manual mode: pump every shard in fixed order (shard 0 first), up to
  /// `rounds` run_once(0) calls each, until all loops go idle. Returns the
  /// number of work items handled. This fixed interleave is the scheduling
  /// order the deterministic harness replays byte-identically.
  int pump(int rounds = 8);
  /// Pump a single shard (manual mode). The supervision harness uses this
  /// to wedge one shard — stop pumping it — while the rest of the world
  /// keeps turning; pump() above is the all-shards loop over this.
  int pump_shard(std::uint32_t shard, int rounds = 8);

  /// Arm a periodic liveness beat on every shard loop: each period the
  /// shard's reactor timer publishes (loop-turn counter, reactor now) into
  /// its health-board slot. A wedged loop stops beating — that staleness is
  /// exactly what the ShardSupervisor watchdog detects (DESIGN.md §15).
  /// Call before start(); restart_shard() re-arms on the replacement loop.
  void enable_heartbeat(Nanos period);
  [[nodiscard]] const ShardHealthBoard& health() const noexcept {
    return health_;
  }

  /// Stateful shard restart (DESIGN.md §15): replace `shard`'s universe —
  /// reactor, injector ring, wake fd — with a fresh one under the same
  /// affinity-domain name, and re-arm the heartbeat. Owner-thread only.
  ///
  ///   * manual mode — the dead loop is destroyed in place (its queued
  ///     tasks and timers die with it; the caller accounts for anything it
  ///     drained first).
  ///   * threaded mode — a wedged loop thread cannot be joined; the old
  ///     Shard is detached and retired, and its universe is deliberately
  ///     leaked at pool destruction (the OS reclaims it at process exit —
  ///     the only safe disposal for memory a runaway thread may still
  ///     touch). A *cooperative* restart of a healthy loop (stop + join +
  ///     rebuild, no leak) happens when the loop drains its stop task.
  void restart_shard(std::uint32_t shard);
  /// Restarts performed so far (all shards).
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }

  /// CPU burned by `shard`'s loop thread (threaded mode; valid after
  /// stop()). The bench uses this for per-shard frames-per-CPU-second.
  [[nodiscard]] Nanos thread_cpu(std::uint32_t shard) const noexcept {
    return shards_[shard].cpu_ns;
  }

 private:
  struct Shard {
    std::unique_ptr<Reactor> reactor;
    std::unique_ptr<SpscRing<std::function<void()>>> injector;
    std::unique_ptr<WakeupFd> wake;
    std::thread thread;
    Nanos cpu_ns = 0;  ///< written by the shard thread after run() returns
    /// Incarnation guard: restart_shard() flips it false so a retired
    /// loop's heartbeat timer goes silent instead of racing the
    /// replacement for the health-board slot (single writer per slot).
    std::shared_ptr<std::atomic<bool>> live;
  };

  void init_shard(std::uint32_t shard);
  void spawn_shard(std::uint32_t shard);
  void arm_heartbeat(std::uint32_t shard);

  std::vector<Shard> shards_;
  /// Universes of force-restarted threaded shards: a wedged, detached
  /// thread may still be inside them, so they are retired here and leaked
  /// on destruction rather than freed under its feet.
  std::vector<Shard> retired_;
  Mode mode_;
  bool started_ = false;
  const VirtualClock* clock_ = nullptr;
  Nanos heartbeat_period_ = 0;  ///< 0 = heartbeat disabled
  ShardHealthBoard health_;
  std::uint64_t restarts_ = 0;
  /// Single-producer end of every injector ring: the pool owner's thread.
  DomainAffinity owner_{"reactor"};
};

}  // namespace flexric
