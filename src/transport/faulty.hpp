// Fault-injecting MsgTransport decorator for deterministic chaos testing.
//
// Wraps any transport (Local or TCP) and perturbs the message flow with a
// seeded RNG: drop, delay, reorder, duplicate, corrupt-frame, timed
// partitions and abrupt close — configurable per direction and per stream.
// All perturbations are scheduled on the owning Reactor (timers + posted
// tasks), so with a VirtualClock installed the exact same seed yields the
// exact same interleaving, byte for byte. This is the engine under
// tests/test_resilience.cpp's chaos schedules.
//
// The decorator composes: an E2Agent's TransportFactory can return a
// FaultyTransport wrapping a fresh LocalTransport each reconnect, which is
// how the harness flaps links without touching agent or server code.
#pragma once

#include <map>
#include <memory>

#include "common/rng.hpp"
#include "transport/reactor.hpp"
#include "transport/transport.hpp"

namespace flexric {

/// Per-direction fault probabilities and latency range. All probabilities
/// are per message, evaluated independently.
struct FaultSpec {
  double drop = 0.0;       ///< message vanishes
  double duplicate = 0.0;  ///< message delivered twice
  double corrupt = 0.0;    ///< one payload byte flipped
  double reorder = 0.0;    ///< held back and released after the next message
  Nanos delay_min = 0;     ///< uniform extra latency in [delay_min, delay_max]
  Nanos delay_max = 0;

  [[nodiscard]] bool trivial() const noexcept {
    return drop == 0 && duplicate == 0 && corrupt == 0 && reorder == 0 &&
           delay_max <= 0;
  }
};

/// Full fault profile: defaults per direction plus per-stream overrides
/// (E2AP management rides stream 0; SM traffic may use others).
struct FaultProfile {
  FaultSpec tx;  ///< faults applied to send()
  FaultSpec rx;  ///< faults applied to inbound messages
  std::map<StreamId, FaultSpec> tx_stream;
  std::map<StreamId, FaultSpec> rx_stream;
  /// A message held for reordering is force-released after this long if no
  /// follow-up message arrives to overtake it.
  Nanos reorder_flush = 5 * kMilli;
  std::uint64_t seed = 1;
};

class FaultyTransport final : public MsgTransport {
 public:
  FaultyTransport(Reactor& reactor, std::shared_ptr<MsgTransport> inner,
                  FaultProfile profile);
  ~FaultyTransport() override;

  Status send(BytesView msg, StreamId stream) override;
  void set_on_message(MsgHandler h) override { on_msg_ = std::move(h); }
  void set_on_close(CloseHandler h) override { on_close_ = std::move(h); }
  void close() override;
  [[nodiscard]] bool is_open() const noexcept override {
    return inner_ != nullptr && inner_->is_open();
  }
  [[nodiscard]] std::string peer_name() const override;

  /// Drop everything in both directions while set (link partition). The
  /// connection stays "open" from both ends — exactly a network partition,
  /// not a close.
  void set_partitioned(bool on) noexcept { partitioned_ = on; }
  [[nodiscard]] bool partitioned() const noexcept { return partitioned_; }
  /// Partition now, heal automatically after `duration` (reactor timer, so
  /// virtual-clock driven in tests).
  void partition_for(Nanos duration);

  /// Abrupt close: discard every queued/held message, then close the inner
  /// transport — models a process kill, not an orderly shutdown.
  void kill();

  /// Deterministic backpressure injection (a slow consumer): with a credit
  /// set, each send() consumes one unit and exhaustion returns
  /// Errc::capacity, exactly as TcpTransport does when its TX buffer cap is
  /// hit. Negative (the default) = unlimited. Unlike a real socket the
  /// "buffer" never drains by itself — the harness hands credit back with
  /// add_tx_credit() at the moments it wants the consumer to catch up.
  void set_tx_credit(std::int64_t msgs) noexcept { tx_credit_ = msgs; }
  void add_tx_credit(std::int64_t msgs) noexcept {
    if (tx_credit_ >= 0) tx_credit_ += msgs;
  }
  [[nodiscard]] std::int64_t tx_credit() const noexcept { return tx_credit_; }

  /// Observability for assertions.
  struct Counters {
    std::uint64_t tx_msgs = 0, rx_msgs = 0;
    std::uint64_t dropped = 0, duplicated = 0, corrupted = 0, reordered = 0,
                  delayed = 0, partition_dropped = 0;
    std::uint64_t tx_capacity_rejections = 0;  ///< sends refused out of credit
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

 private:
  using Deliver = std::function<void(StreamId, BytesView)>;

  [[nodiscard]] const FaultSpec& spec(bool tx, StreamId stream) const;
  /// Apply `s` to one message and forward the survivors through `out`.
  void perturb(const FaultSpec& s, StreamId stream, BytesView msg,
               bool tx_side);
  void emit(bool tx_side, StreamId stream, Buffer msg);
  void emit_later(bool tx_side, StreamId stream, Buffer msg, Nanos delay);
  void flush_held(bool tx_side);

  Reactor& reactor_;
  std::shared_ptr<MsgTransport> inner_;
  FaultProfile profile_;
  Rng rng_;
  MsgHandler on_msg_;
  CloseHandler on_close_;
  bool partitioned_ = false;
  std::int64_t tx_credit_ = -1;  ///< < 0: unlimited
  Reactor::TimerId heal_timer_ = 0;

  /// At most one held (reordered) message per direction.
  struct Held {
    bool active = false;
    StreamId stream = 0;
    Buffer msg;
    Reactor::TimerId flush_timer = 0;
  };
  Held held_tx_, held_rx_;

  Counters counters_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace flexric
