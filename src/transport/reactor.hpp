// Event loop (reactor) for the SDK's event-driven architecture.
//
// The paper's server library "is designed as an event-driven/callback-driven
// system ... it invokes iApps only when there are new messages, unlike
// systems like FlexRAN that use polling" (§4.2.2). This reactor is that
// engine: epoll for fd readiness, a timer heap for periodic SM reports, and
// a task queue for deferred work (also used by the in-process transport).
// Single-threaded by design (§4.4): handlers run on the loop thread, so no
// locking is needed anywhere in the SDK.
#pragma once

#include <sys/epoll.h>

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/affinity.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"

namespace flexric {

class Reactor {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  /// `domain` names the single-threaded universe this loop anchors (see
  /// common/affinity.hpp): "reactor" for the classic single-loop SDK,
  /// "shard<i>" when the loop is one shard of a sharded RIC. Must be a
  /// string literal (static storage duration); affinity diagnostics and the
  /// static analyzer's @affine(<domain>) vocabulary both use it.
  explicit Reactor(const char* domain = "reactor");
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Register fd for epoll events (EPOLLIN/EPOLLOUT/...). The callback runs
  /// on the loop thread with the ready event mask.
  Status add_fd(int fd, std::uint32_t events, FdCallback cb);
  /// Change the event mask of a registered fd.
  Status mod_fd(int fd, std::uint32_t events);
  /// Unregister; safe to call from within the fd's own callback.
  void del_fd(int fd);

  /// One-shot or periodic timer; period is in nanoseconds of reactor time
  /// (real time by default, virtual time under set_time_source).
  TimerId add_timer(Nanos period, std::function<void()> cb,
                    bool periodic = true);
  void cancel_timer(TimerId id);

  /// Drive timers from a virtual clock instead of CLOCK_MONOTONIC. Install
  /// it before creating any timer (existing deadlines are not rebased) and
  /// keep the clock alive for the reactor's lifetime; pass nullptr to revert
  /// to real time. With a virtual clock the loop never sleeps waiting for a
  /// timer — the test advances the clock and pumps run_once(0), which is what
  /// makes chaos/resilience schedules bit-deterministic.
  void set_time_source(const VirtualClock* clock) noexcept { vclock_ = clock; }

  /// Current reactor time: the virtual clock when installed, else
  /// CLOCK_MONOTONIC. All timer deadlines live on this axis.
  [[nodiscard]] Nanos now() const noexcept;

  /// Run `task` on the next loop iteration (FIFO). Used for in-process
  /// message delivery and for scheduling work from within handlers.
  void post(std::function<void()> task);

  /// Process ready events/timers/tasks once. Blocks up to timeout_ms when
  /// nothing is pending (pass 0 to poll). Returns number of items handled.
  int run_once(int timeout_ms);
  /// Loop until stop() is called.
  void run();
  void stop() noexcept { running_ = false; }

  [[nodiscard]] bool has_pending_tasks() const noexcept {
    return !tasks_.empty();
  }

  /// Owning-thread stamp, re-bound on every entry to run()/run_once() so
  /// ownership follows whoever pumps the loop. Reactor-affine classes
  /// (`@affine(reactor)`) check it via FLEXRIC_ASSERT_AFFINITY in their
  /// public entry points; see common/affinity.hpp and DESIGN.md §10.
  [[nodiscard]] ReactorAffinity& affinity() noexcept { return affinity_; }
  [[nodiscard]] const ReactorAffinity& affinity() const noexcept {
    return affinity_;
  }

 private:
  struct Timer {
    Nanos deadline;
    Nanos period;  // 0 = one-shot
    TimerId id;
    bool operator>(const Timer& o) const noexcept {
      return deadline > o.deadline;
    }
  };

  int fire_due_timers();
  int drain_tasks();
  [[nodiscard]] int next_timeout_ms(int requested) const;

  int epfd_ = -1;
  bool running_ = false;
  const VirtualClock* vclock_ = nullptr;
  std::vector<epoll_event> ready_;  ///< sized to the registered fd count
  std::map<int, FdCallback> fds_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timer_heap_;
  std::map<TimerId, std::function<void()>> timer_cbs_;  // absent = cancelled
  TimerId next_timer_id_ = 1;
  std::queue<std::function<void()>> tasks_;
  ReactorAffinity affinity_;
};

}  // namespace flexric
