#include "transport/faulty.hpp"

#include "common/log.hpp"

namespace flexric {

FaultyTransport::FaultyTransport(Reactor& reactor,
                                 std::shared_ptr<MsgTransport> inner,
                                 FaultProfile profile)
    : reactor_(reactor),
      inner_(std::move(inner)),
      profile_(std::move(profile)),
      rng_(profile_.seed) {
  FLEXRIC_ASSERT(inner_ != nullptr, "FaultyTransport: null inner transport");
  inner_->set_on_message([this](StreamId stream, BytesView msg) {
    counters_.rx_msgs++;
    if (partitioned_) {
      counters_.partition_dropped++;
      return;
    }
    perturb(spec(/*tx=*/false, stream), stream, msg, /*tx_side=*/false);
  });
  inner_->set_on_close([this] {
    held_tx_.active = false;
    held_rx_.active = false;
    if (on_close_) {
      auto cb = std::move(on_close_);
      on_close_ = nullptr;
      cb();
    }
  });
}

FaultyTransport::~FaultyTransport() {
  *alive_ = false;
  if (heal_timer_ != 0) reactor_.cancel_timer(heal_timer_);
  if (held_tx_.flush_timer != 0) reactor_.cancel_timer(held_tx_.flush_timer);
  if (held_rx_.flush_timer != 0) reactor_.cancel_timer(held_rx_.flush_timer);
  if (inner_) {
    inner_->set_on_message(nullptr);
    inner_->set_on_close(nullptr);
  }
}

std::string FaultyTransport::peer_name() const {
  return "faulty(" + (inner_ ? inner_->peer_name() : std::string("-")) + ")";
}

const FaultSpec& FaultyTransport::spec(bool tx, StreamId stream) const {
  const auto& per_stream = tx ? profile_.tx_stream : profile_.rx_stream;
  auto it = per_stream.find(stream);
  if (it != per_stream.end()) return it->second;
  return tx ? profile_.tx : profile_.rx;
}

Status FaultyTransport::send(BytesView msg, StreamId stream) {
  if (!is_open()) return {Errc::io, "transport closed"};
  if (tx_credit_ == 0) {
    // Backpressure injection: surface the same error a capped TcpTransport
    // TX buffer would, so overload code paths are exercised deterministically.
    counters_.tx_capacity_rejections++;
    return {Errc::capacity, "send buffer full (injected backpressure)"};
  }
  if (tx_credit_ > 0) tx_credit_--;
  counters_.tx_msgs++;
  if (partitioned_) {
    // The link eats the message; the sender cannot tell (that is the point).
    counters_.partition_dropped++;
    return Status::ok();
  }
  perturb(spec(/*tx=*/true, stream), stream, msg, /*tx_side=*/true);
  return Status::ok();
}

void FaultyTransport::perturb(const FaultSpec& s, StreamId stream,
                              BytesView msg, bool tx_side) {
  // A fresh message overtakes whatever is held for reordering: deliver the
  // newcomer through the regular pipeline, then release the held one.
  if (s.trivial()) {
    emit(tx_side, stream, Buffer(msg.begin(), msg.end()));
    flush_held(tx_side);
    return;
  }
  if (s.drop > 0 && rng_.chance(s.drop)) {
    counters_.dropped++;
    flush_held(tx_side);
    return;
  }
  Buffer copy(msg.begin(), msg.end());
  if (s.corrupt > 0 && !copy.empty() && rng_.chance(s.corrupt)) {
    copy[rng_.bounded(copy.size())] ^=
        static_cast<std::uint8_t>(1 + rng_.bounded(255));
    counters_.corrupted++;
  }
  int copies = 1;
  if (s.duplicate > 0 && rng_.chance(s.duplicate)) {
    counters_.duplicated++;
    copies = 2;
  }
  if (s.reorder > 0 && rng_.chance(s.reorder)) {
    Held& held = tx_side ? held_tx_ : held_rx_;
    if (!held.active) {
      counters_.reordered++;
      held.active = true;
      held.stream = stream;
      held.msg = std::move(copy);
      // Force-release if nothing comes along to overtake it.
      held.flush_timer = reactor_.add_timer(
          profile_.reorder_flush,
          [this, tx_side, alive = std::weak_ptr<bool>(alive_)] {
            auto a = alive.lock();
            if (a && *a) flush_held(tx_side);
          },
          /*periodic=*/false);
      return;  // held: nothing to emit yet, and nothing overtakes
    }
    // Already holding one message; fall through and deliver normally (the
    // newcomer will overtake the held message below).
  }
  for (int i = 0; i < copies; ++i) {
    Nanos delay = 0;
    if (s.delay_max > s.delay_min && s.delay_min >= 0) {
      delay = s.delay_min +
              static_cast<Nanos>(rng_.bounded(
                  static_cast<std::uint64_t>(s.delay_max - s.delay_min) + 1));
    } else if (s.delay_max > 0) {
      delay = s.delay_max;
    }
    if (delay > 0) {
      counters_.delayed++;
      emit_later(tx_side, stream, Buffer(copy), delay);
    } else {
      emit(tx_side, stream, Buffer(copy));
    }
  }
  flush_held(tx_side);
}

void FaultyTransport::flush_held(bool tx_side) {
  Held& held = tx_side ? held_tx_ : held_rx_;
  if (!held.active) return;
  held.active = false;
  if (held.flush_timer != 0) {
    reactor_.cancel_timer(held.flush_timer);
    held.flush_timer = 0;
  }
  emit(tx_side, held.stream, std::move(held.msg));
}

void FaultyTransport::emit(bool tx_side, StreamId stream, Buffer msg) {
  // A partition that started after the message was perturbed/delayed still
  // eats it: in-flight bytes do not survive a cut link.
  if (partitioned_) {
    counters_.partition_dropped++;
    return;
  }
  if (tx_side) {
    if (inner_ && inner_->is_open())
      static_cast<void>(inner_->send(msg, stream));
  } else {
    if (on_msg_) on_msg_(stream, msg);
  }
}

void FaultyTransport::emit_later(bool tx_side, StreamId stream, Buffer msg,
                                 Nanos delay) {
  reactor_.add_timer(
      delay,
      [this, tx_side, stream, m = std::move(msg),
       alive = std::weak_ptr<bool>(alive_)]() mutable {
        auto a = alive.lock();
        if (a && *a) emit(tx_side, stream, std::move(m));
      },
      /*periodic=*/false);
}

void FaultyTransport::partition_for(Nanos duration) {
  set_partitioned(true);
  if (heal_timer_ != 0) reactor_.cancel_timer(heal_timer_);
  heal_timer_ = reactor_.add_timer(
      duration,
      [this, alive = std::weak_ptr<bool>(alive_)] {
        auto a = alive.lock();
        if (a && *a) {
          heal_timer_ = 0;
          set_partitioned(false);
        }
      },
      /*periodic=*/false);
}

void FaultyTransport::kill() {
  held_tx_ = Held{};
  held_rx_ = Held{};
  *alive_ = false;  // orphan delayed deliveries: an abrupt close drops them
  alive_ = std::make_shared<bool>(true);
  if (inner_) inner_->close();
}

void FaultyTransport::close() {
  if (inner_) inner_->close();
}

}  // namespace flexric
