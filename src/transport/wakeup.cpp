#include "transport/wakeup.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cstdint>

namespace flexric {

WakeupFd::WakeupFd(Reactor& reactor, std::function<void()> on_wake)
    : reactor_(reactor), on_wake_(std::move(on_wake)) {
  fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  FLEXRIC_ASSERT(fd_ >= 0, "eventfd failed");
  Status st = reactor_.add_fd(fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t count = 0;
    // Drain the counter so the fd de-asserts; the value is irrelevant.
    ssize_t n = read(fd_, &count, sizeof count);
    (void)n;
    if (on_wake_) on_wake_();
  });
  FLEXRIC_ASSERT(st.is_ok(), "wakeup add_fd failed");
}

WakeupFd::~WakeupFd() {
  if (fd_ >= 0) {
    reactor_.del_fd(fd_);
    close(fd_);
  }
}

void WakeupFd::notify() noexcept {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is already at max: a wake is pending, which is
  // exactly what we wanted — coalesce.
  ssize_t n = write(fd_, &one, sizeof one);
  (void)n;
}

}  // namespace flexric
