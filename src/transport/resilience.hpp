// Resilience knobs for the E2 connection layer.
//
// The paper runs E2 over SCTP precisely because RAN<->RIC links fail in
// practice (node restarts, transient partitions). One config struct carries
// every knob of the recovery machinery so agent, server and tests share a
// single vocabulary:
//
//   * agent side  — reconnect backoff (exponential with decorrelated
//     jitter), E2 Setup replay, heartbeat (empty RICserviceUpdate on
//     stream 0) with a miss threshold that forces reconnection, and a
//     setup-response timeout for half-open links.
//   * server side — per-agent liveness (quarantine, then expiry through the
//     normal disconnect path) and transparent re-establishment: an agent
//     returning with the same global node id keeps its AgentId, its RanDb
//     entry and its subscriptions (the server replays them), and iApps see
//     one `Reconnected` event instead of teardown/re-setup churn.
//
// Everything runs on the owning Reactor thread; with a VirtualClock
// installed on the reactor the whole recovery state machine is
// bit-deterministic (see tests/test_resilience.cpp).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace flexric {

struct ResilienceConfig {
  // -- agent: reconnect backoff ---------------------------------------------
  /// Reconnect after connection loss (only possible when the controller was
  /// added with a TransportFactory; a bare transport cannot be re-dialed).
  bool reconnect = true;
  /// First retry delay; also the lower bound of every jittered delay.
  Nanos backoff_base = 100 * kMilli;
  /// Upper bound on any retry delay.
  Nanos backoff_cap = 10 * kSecond;
  /// Give up after this many consecutive failed attempts (0 = retry forever).
  std::uint32_t max_attempts = 0;
  /// Seed for the jitter RNG — fixed seed => bit-identical retry schedule.
  std::uint64_t seed = 0x5EED;

  // -- agent: heartbeat -----------------------------------------------------
  /// Period of the liveness probe (empty RICserviceUpdate on stream 0);
  /// 0 disables the heartbeat.
  Nanos heartbeat_period = kSecond;
  /// Consecutive unanswered probes before the link is declared dead and a
  /// reconnect is forced.
  std::uint32_t heartbeat_miss_threshold = 3;
  /// E2 Setup sent but no response within this window => reconnect (guards
  /// against a link that dies exactly during the handshake). 0 disables.
  Nanos setup_timeout = 3 * kSecond;

  // -- server: liveness & re-establishment ----------------------------------
  /// No bytes from an agent for this long => quarantined (iApps are told,
  /// state is kept). 0 disables the liveness scan.
  Nanos quarantine_after = 3 * kSecond;
  /// Quarantined or detached for this long => expired through the normal
  /// disconnect path (RanDb entry, subscriptions and iApp state freed).
  /// 0 disables retention: a closed connection tears down immediately.
  Nanos expire_after = 10 * kSecond;
  /// Rebind an agent returning with the same GlobalNodeId to its previous
  /// AgentId and replay its subscriptions.
  bool reestablish = true;
};

/// Knobs of the shard supervision layer (DESIGN.md §15): shard loops beat
/// into a ShardHealthBoard, a home-side watchdog classifies each shard
/// through healthy -> degraded -> quarantined -> recovering from the age of
/// its newest beat, and a quarantined shard is contained and restarted in
/// place. Like ResilienceConfig above, every duration is a reactor-clock
/// duration, so with a VirtualClock the whole state machine is
/// bit-deterministic in the manual harness.
struct SupervisionConfig {
  /// Cadence of each shard loop's heartbeat into the health board. Must be
  /// comfortably below degraded_after or a healthy shard flaps.
  Nanos heartbeat_period = 10 * kMilli;
  /// Beat older than this => degraded (watch, don't act yet — hysteresis
  /// against one slow handler or a scheduler hiccup).
  Nanos degraded_after = 50 * kMilli;
  /// Beat older than this => quarantined: contain + (auto_restart) rebuild.
  Nanos quarantine_after = 200 * kMilli;
  /// Cadence of the home-side watchdog poll (a reactor timer in threaded
  /// mode; the manual harness polls explicitly each quantum). Detection
  /// latency is bounded by quarantine_after + watchdog_period.
  Nanos watchdog_period = 20 * kMilli;
  /// A recovering shard must deliver this many consecutive fresh polls
  /// before it is trusted healthy again (and a degraded shard must do the
  /// same to clear) — the hysteresis that stops a limping shard from
  /// flapping healthy/degraded every poll.
  std::uint32_t recover_hysteresis = 3;
  /// Rebuild a quarantined shard immediately (the supervised default).
  /// false = contain only; the operator (or a test) calls restart itself.
  bool auto_restart = true;
  /// Give up restarting a shard after this many rebuilds (0 = never give
  /// up). A shard past its budget stays quarantined — contained, visible
  /// in the health metrics, but no longer thrashing.
  std::uint32_t max_restarts = 0;
  /// Master switch: false leaves the watchdog dormant (classification
  /// stays healthy, nothing is ever contained or restarted).
  bool enabled = true;
};

/// Decorrelated-jitter backoff: first delay is `base`, then
/// uniform(base, min(cap, 3 * previous)). Spreads reconnect storms while
/// still growing roughly exponentially; fully determined by the Rng state.
inline Nanos next_backoff(const ResilienceConfig& rc, Nanos prev, Rng& rng) {
  if (prev <= 0) return std::min(rc.backoff_base, rc.backoff_cap);
  Nanos hi = std::min(rc.backoff_cap, 3 * prev);
  if (hi <= rc.backoff_base) return std::min(rc.backoff_base, rc.backoff_cap);
  Nanos span = hi - rc.backoff_base;
  return rc.backoff_base +
         static_cast<Nanos>(rng.bounded(static_cast<std::uint64_t>(span) + 1));
}

}  // namespace flexric
