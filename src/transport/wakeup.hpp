// Cross-thread reactor wakeup (DESIGN.md §13).
//
// A shard reactor blocked in epoll_wait cannot see a push into an SPSC ring
// — the ring is memory, not a file descriptor. WakeupFd bridges that gap
// with an eventfd registered on the consumer's reactor: the producer calls
// notify() (one async-signal-safe write syscall, callable from any thread),
// the consumer's loop wakes and runs the drain callback on its own thread.
//
// This is the only cross-thread *signaling* primitive in the SDK, and it
// lives in src/transport/ with the rest of the fd machinery. Data still
// travels exclusively through the rings; WakeupFd carries no payload —
// coalesced notifies are fine because the drain callback empties the ring
// regardless of how many pushes preceded the wake.
#pragma once

#include <functional>

#include "common/result.hpp"
#include "transport/reactor.hpp"

namespace flexric {

class WakeupFd {
 public:
  /// Registers an eventfd on `reactor`; `on_wake` runs on the reactor
  /// thread after one or more notify() calls.
  WakeupFd(Reactor& reactor, std::function<void()> on_wake);
  ~WakeupFd();
  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  /// Thread-safe, non-blocking, never fails visibly: an already-pending
  /// wake coalesces. Safe to call from any producer thread.
  void notify() noexcept;

 private:
  Reactor& reactor_;
  std::function<void()> on_wake_;
  int fd_ = -1;
};

}  // namespace flexric
