// Message-oriented transport abstraction.
//
// O-RAN mandates SCTP under E2; the SDK abstracts the transport behind this
// interface so it can be swapped (§4.3 abstraction (1)). Two implementations
// are provided:
//
//  * TcpTransport — SCTP-like framing over TCP: each message rides in a
//    frame [u32 len][u16 stream][payload], preserving SCTP's message
//    boundaries, ordering and multi-stream addressing. (Real SCTP is not
//    available in this environment; see DESIGN.md substitutions.)
//  * LocalTransport — an in-process pipe pair for deterministic tests and
//    benches without kernel sockets.
//
// All callbacks run on the owning Reactor's thread.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/buffer.hpp"
#include "common/result.hpp"
#include "transport/reactor.hpp"

namespace flexric {

/// Stream id inside a transport connection (SCTP stream analogue). E2AP
/// management uses stream 0; SM traffic may use others.
using StreamId = std::uint16_t;

/// Wire framing constants shared by TcpTransport and FrameAssembler:
/// every message rides in [u32 len][u16 stream][payload] (little endian).
constexpr std::size_t kFrameHeaderSize = 6;
constexpr std::size_t kMaxFrameSize = 16 * 1024 * 1024;

/// Incremental reassembler for the [len][stream] framing. Bytes arrive in
/// arbitrary chunks (a stalled peer can dribble one byte per read); complete
/// frames are handed to the sink in order. Extracted from TcpTransport so
/// the reassembly state machine is testable without a socket.
class FrameAssembler {
 public:
  /// Return false from the sink to stop parsing (e.g. the connection was
  /// closed by the handler); already-consumed frames stay consumed.
  using FrameSink = std::function<bool(StreamId, BytesView)>;

  /// Append `bytes` and deliver every complete frame. Errc::malformed on an
  /// oversized length field (the stream can only be desynchronized garbage
  /// from that point on).
  Status feed(BytesView bytes, const FrameSink& sink);

  /// Bytes buffered waiting for the rest of a frame.
  [[nodiscard]] std::size_t buffered() const noexcept { return rx_.size(); }

  /// Cap on the peer-claimed frame length (default kMaxFrameSize). The
  /// length field is validated as soon as the 6-byte header arrives, so an
  /// adversarial multi-GB claim fails with Errc::malformed before a single
  /// payload byte is buffered — the claim never drives an allocation.
  void set_max_frame(std::size_t bytes) noexcept { max_frame_ = bytes; }
  [[nodiscard]] std::size_t max_frame() const noexcept { return max_frame_; }

 private:
  Buffer rx_;
  std::size_t max_frame_ = kMaxFrameSize;
};

/// Append one framed message to `out` (the encode side of FrameAssembler).
void append_frame(Buffer& out, BytesView msg, StreamId stream);

class MsgTransport {
 public:
  /// (stream, message bytes). The view is only valid during the call.
  using MsgHandler = std::function<void(StreamId, BytesView)>;
  using CloseHandler = std::function<void()>;

  virtual ~MsgTransport() = default;

  /// Queue a whole message for delivery. Reliable and ordered per stream.
  virtual Status send(BytesView msg, StreamId stream = 0) = 0;
  virtual void set_on_message(MsgHandler h) = 0;
  virtual void set_on_close(CloseHandler h) = 0;
  virtual void close() = 0;
  [[nodiscard]] virtual bool is_open() const noexcept = 0;
  /// Diagnostic peer name ("127.0.0.1:36422", "local").
  [[nodiscard]] virtual std::string peer_name() const = 0;
};

// ---------------------------------------------------------------------------
// TCP with SCTP-like framing
// ---------------------------------------------------------------------------

// @affine(reactor)
class TcpTransport final : public MsgTransport {
 public:
  /// Wrap an already-connected socket (takes ownership of fd).
  TcpTransport(Reactor& reactor, int fd);
  ~TcpTransport() override;

  /// Queues the frame; the actual write is corked until the end of the
  /// current reactor turn, so several messages sent back-to-back (e.g. the
  /// per-TTI indications of multiple SMs) leave in ONE syscall.
  Status send(BytesView msg, StreamId stream = 0) override;
  void set_on_message(MsgHandler h) override { on_msg_ = std::move(h); }
  void set_on_close(CloseHandler h) override { on_close_ = std::move(h); }
  void close() override;
  [[nodiscard]] bool is_open() const noexcept override { return fd_ >= 0; }
  [[nodiscard]] std::string peer_name() const override;

  /// Blocking client connect, then non-blocking operation.
  static Result<std::unique_ptr<TcpTransport>> connect(Reactor& reactor,
                                                       const std::string& host,
                                                       std::uint16_t port);

  /// Cap on unsent bytes queued towards a stalled peer. Once the kernel
  /// socket buffer and this queue are full, send() returns Errc::capacity
  /// (backpressure) instead of growing without bound.
  void set_max_tx_buffer(std::size_t bytes) noexcept { max_tx_buf_ = bytes; }
  [[nodiscard]] std::size_t pending_tx_bytes() const noexcept {
    return txbuf_.size() - tx_off_;
  }

  /// Cap on the frame length a peer may claim (see
  /// FrameAssembler::set_max_frame): adversarial multi-GB length fields are
  /// rejected at the header, before any payload buffering.
  void set_max_rx_frame(std::size_t bytes) noexcept { rx_.set_max_frame(bytes); }

  static constexpr std::size_t kDefaultMaxTxBuffer = 32 * 1024 * 1024;

 private:
  void on_events(std::uint32_t events);
  void read_ready();
  void schedule_flush();
  Status flush_write();
  void update_epoll_mask();

  Reactor& reactor_;
  int fd_ = -1;
  MsgHandler on_msg_;
  CloseHandler on_close_;
  FrameAssembler rx_;       // reassembles frames across short reads
  Buffer txbuf_;            // pending outgoing bytes (frames concatenated)
  std::size_t tx_off_ = 0;  // bytes of txbuf_ already written
  std::size_t max_tx_buf_ = kDefaultMaxTxBuffer;
  bool flush_scheduled_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Accepts TCP connections and hands each to `on_accept` wrapped in a
/// TcpTransport. Listens on 127.0.0.1.
class TcpListener {
 public:
  using AcceptHandler =
      std::function<void(std::unique_ptr<TcpTransport>)>;

  TcpListener(Reactor& reactor, AcceptHandler on_accept);
  ~TcpListener();

  /// Bind + listen. Port 0 picks an ephemeral port (see port()).
  Status listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  void close();

 private:
  void accept_ready();

  Reactor& reactor_;
  AcceptHandler on_accept_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// ---------------------------------------------------------------------------
// In-process pipe pair
// ---------------------------------------------------------------------------

class LocalTransport final : public MsgTransport {
 public:
  /// Create a connected pair on one reactor. Messages are delivered as
  /// posted reactor tasks (FIFO, so ordering matches a real transport).
  static std::pair<std::shared_ptr<LocalTransport>,
                   std::shared_ptr<LocalTransport>>
  make_pair(Reactor& reactor);

  Status send(BytesView msg, StreamId stream = 0) override;
  void set_on_message(MsgHandler h) override { on_msg_ = std::move(h); }
  void set_on_close(CloseHandler h) override { on_close_ = std::move(h); }
  void close() override;
  [[nodiscard]] bool is_open() const noexcept override { return open_; }
  [[nodiscard]] std::string peer_name() const override { return "local"; }

 private:
  explicit LocalTransport(Reactor& reactor) : reactor_(reactor) {}

  Reactor& reactor_;
  std::weak_ptr<LocalTransport> peer_;
  MsgHandler on_msg_;
  CloseHandler on_close_;
  bool open_ = true;
};

}  // namespace flexric
