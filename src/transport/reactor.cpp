#include "transport/reactor.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace flexric {

Reactor::Reactor() {
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  FLEXRIC_ASSERT(epfd_ >= 0, "epoll_create1 failed");
}

Reactor::~Reactor() {
  if (epfd_ >= 0) ::close(epfd_);
}

Status Reactor::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    return {Errc::io, std::strerror(errno)};
  fds_[fd] = std::move(cb);
  return Status::ok();
}

Status Reactor::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    return {Errc::io, std::strerror(errno)};
  return Status::ok();
}

void Reactor::del_fd(int fd) {
  epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

Reactor::TimerId Reactor::add_timer(Nanos period, std::function<void()> cb,
                                    bool periodic) {
  TimerId id = next_timer_id_++;
  timer_cbs_[id] = std::move(cb);
  timer_heap_.push(Timer{mono_now() + period, periodic ? period : 0, id});
  return id;
}

void Reactor::cancel_timer(TimerId id) { timer_cbs_.erase(id); }

void Reactor::post(std::function<void()> task) {
  tasks_.push(std::move(task));
}

int Reactor::drain_tasks() {
  int handled = 0;
  // Only drain tasks queued before this call: a task that posts another
  // task yields to I/O first (prevents starvation).
  std::size_t n = tasks_.size();
  for (std::size_t i = 0; i < n && !tasks_.empty(); ++i) {
    auto task = std::move(tasks_.front());
    tasks_.pop();
    task();
    ++handled;
  }
  return handled;
}

int Reactor::fire_due_timers() {
  int handled = 0;
  Nanos now = mono_now();
  while (!timer_heap_.empty() && timer_heap_.top().deadline <= now) {
    Timer t = timer_heap_.top();
    timer_heap_.pop();
    auto it = timer_cbs_.find(t.id);
    if (it == timer_cbs_.end()) continue;  // cancelled
    if (t.period > 0) {
      t.deadline += t.period;
      if (t.deadline <= now) t.deadline = now + t.period;  // missed ticks
      timer_heap_.push(t);
      it->second();
    } else {
      auto cb = std::move(it->second);
      timer_cbs_.erase(it);
      cb();
    }
    ++handled;
  }
  return handled;
}

int Reactor::next_timeout_ms(int requested) const {
  if (!tasks_.empty()) return 0;
  if (timer_heap_.empty()) return requested;
  Nanos until = timer_heap_.top().deadline - mono_now();
  if (until <= 0) return 0;
  int ms = static_cast<int>((until + kMilli - 1) / kMilli);
  return requested < 0 ? ms : std::min(ms, requested);
}

int Reactor::run_once(int timeout_ms) {
  int handled = drain_tasks();
  handled += fire_due_timers();

  epoll_event events[64];
  int timeout = handled > 0 ? 0 : next_timeout_ms(timeout_ms);
  int n = epoll_wait(epfd_, events, 64, timeout);
  if (n < 0) {
    if (errno != EINTR) LOG_ERROR("reactor", "epoll_wait: %s", std::strerror(errno));
    return handled;
  }
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    auto it = fds_.find(fd);
    if (it == fds_.end()) continue;  // removed by an earlier handler
    // Copy: the handler may del_fd(fd) and invalidate the iterator.
    FdCallback cb = it->second;
    cb(events[i].events);
    ++handled;
  }
  handled += fire_due_timers();
  handled += drain_tasks();
  return handled;
}

void Reactor::run() {
  running_ = true;
  while (running_) run_once(100);
}

}  // namespace flexric
