#include "transport/reactor.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace flexric {

Reactor::Reactor(const char* domain) : affinity_(domain) {
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  FLEXRIC_ASSERT(epfd_ >= 0, "epoll_create1 failed");
  ready_.resize(64);
}

Nanos Reactor::now() const noexcept {
  return vclock_ != nullptr ? vclock_->now() : mono_now();
}

Reactor::~Reactor() {
  if (epfd_ >= 0) ::close(epfd_);
}

Status Reactor::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    return {Errc::io, std::strerror(errno)};
  fds_[fd] = std::move(cb);
  return Status::ok();
}

Status Reactor::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    return {Errc::io, std::strerror(errno)};
  return Status::ok();
}

void Reactor::del_fd(int fd) {
  epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

Reactor::TimerId Reactor::add_timer(Nanos period, std::function<void()> cb,
                                    bool periodic) {
  TimerId id = next_timer_id_++;
  timer_cbs_[id] = std::move(cb);
  timer_heap_.push(Timer{now() + period, periodic ? period : 0, id});
  return id;
}

void Reactor::cancel_timer(TimerId id) { timer_cbs_.erase(id); }

void Reactor::post(std::function<void()> task) {
  tasks_.push(std::move(task));
}

int Reactor::drain_tasks() {
  int handled = 0;
  // Only drain tasks queued before this call: a task that posts another
  // task yields to I/O first (prevents starvation).
  std::size_t n = tasks_.size();
  for (std::size_t i = 0; i < n && !tasks_.empty(); ++i) {
    auto task = std::move(tasks_.front());
    tasks_.pop();
    task();
    ++handled;
  }
  return handled;
}

int Reactor::fire_due_timers() {
  int handled = 0;
  Nanos t_now = now();
  while (!timer_heap_.empty() && timer_heap_.top().deadline <= t_now) {
    Timer t = timer_heap_.top();
    timer_heap_.pop();
    auto it = timer_cbs_.find(t.id);
    if (it == timer_cbs_.end()) continue;  // cancelled
    if (t.period > 0) {
      t.deadline += t.period;
      if (t.deadline <= t_now) t.deadline = t_now + t.period;  // missed ticks
      timer_heap_.push(t);
      // Copy: the callback may cancel_timer() its own id (e.g. a heartbeat
      // that decides to tear the connection down), which would otherwise
      // destroy the std::function mid-execution.
      auto cb = it->second;
      cb();
    } else {
      auto cb = std::move(it->second);
      timer_cbs_.erase(it);
      cb();
    }
    ++handled;
  }
  return handled;
}

int Reactor::next_timeout_ms(int requested) const {
  if (!tasks_.empty()) return 0;
  if (timer_heap_.empty()) return requested;
  Nanos until = timer_heap_.top().deadline - now();
  if (until <= 0) return 0;
  // Virtual time does not advance while we sleep, so blocking on a virtual
  // deadline would deadlock the loop; the driver advances the clock instead.
  if (vclock_ != nullptr) return requested;
  int ms = static_cast<int>((until + kMilli - 1) / kMilli);
  return requested < 0 ? ms : std::min(ms, requested);
}

int Reactor::run_once(int timeout_ms) {
  // The thread pumping the loop owns every reactor-affine object; re-stamp
  // on each entry so handing the loop to a worker thread re-binds cleanly.
  if constexpr (kAffinityGuardsEnabled) affinity_.bind_to_current_thread();
  int handled = drain_tasks();
  handled += fire_due_timers();

  // Size the ready buffer to the fd population so one epoll_wait can report
  // every ready handle; loop on full batches anyway (fds registered by
  // handlers mid-drain can exceed the snapshot).
  if (ready_.size() < fds_.size()) ready_.resize(fds_.size());
  int timeout = handled > 0 ? 0 : next_timeout_ms(timeout_ms);
  int n;
  do {
    const int batch = static_cast<int>(ready_.size());
    n = epoll_wait(epfd_, ready_.data(), batch, timeout);
    if (n < 0) {
      if (errno != EINTR)
        LOG_ERROR("reactor", "epoll_wait: %s", std::strerror(errno));
      return handled;
    }
    for (int i = 0; i < n; ++i) {
      int fd = ready_[i].data.fd;
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;  // removed by an earlier handler
      // Copy: the handler may del_fd(fd) and invalidate the iterator.
      FdCallback cb = it->second;
      cb(ready_[i].events);
      ++handled;
    }
    timeout = 0;  // further rounds only drain what is already ready
  } while (n == static_cast<int>(ready_.size()));
  handled += fire_due_timers();
  handled += drain_tasks();
  return handled;
}

void Reactor::run() {
  running_ = true;
  while (running_) run_once(100);
}

}  // namespace flexric
