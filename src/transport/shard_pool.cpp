#include "transport/shard_pool.hpp"

namespace flexric {

namespace {
constexpr std::size_t kInjectorCapacity = 256;

constexpr const char* kShardDomains[ShardPool::kMaxShards] = {
    "shard0",  "shard1",  "shard2",  "shard3", "shard4",  "shard5",
    "shard6",  "shard7",  "shard8",  "shard9", "shard10", "shard11",
    "shard12", "shard13", "shard14", "shard15"};
}  // namespace

const char* ShardPool::domain_name(std::uint32_t shard) noexcept {
  return shard < kMaxShards ? kShardDomains[shard] : "shard";
}

ShardPool::ShardPool(std::uint32_t shards, Mode mode,
                     const VirtualClock* clock)
    : mode_(mode) {
  FLEXRIC_ASSERT(shards >= 1 && shards <= kMaxShards,
                 "shard count out of range");
  shards_.resize(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    Shard& s = shards_[i];
    s.reactor = std::make_unique<Reactor>(domain_name(i));
    if (clock != nullptr) s.reactor->set_time_source(clock);
    s.injector =
        std::make_unique<SpscRing<std::function<void()>>>(kInjectorCapacity);
    // Drain runs on the shard's loop thread; the ring is the conduit.
    SpscRing<std::function<void()>>* ring = s.injector.get();
    s.wake = std::make_unique<WakeupFd>(*s.reactor, [ring] {
      std::function<void()> fn;
      // @consumer(shard-injector)
      while (ring->try_pop(fn)) fn();
    });
  }
}

ShardPool::~ShardPool() { stop(); }

void ShardPool::start() {
  if (mode_ != Mode::threaded || started_) return;
  started_ = true;
  for (Shard& s : shards_) {
    Reactor* r = s.reactor.get();
    Nanos* cpu_out = &s.cpu_ns;
    s.thread = std::thread([r, cpu_out] {
      const Nanos cpu0 = thread_cpu_now();
      r->run();
      *cpu_out = thread_cpu_now() - cpu0;
    });
  }
}

void ShardPool::stop() {
  if (!started_) return;
  for (std::uint32_t i = 0; i < size(); ++i) {
    Reactor* r = shards_[i].reactor.get();
    // The loop must stop itself: Reactor::stop() is not cross-thread safe.
    // The injector ring may be momentarily full under load — spin until the
    // stop task is accepted (the shard is draining, so this terminates).
    while (!post(i, [r] { r->stop(); }).is_ok()) std::this_thread::yield();
  }
  for (Shard& s : shards_)
    if (s.thread.joinable()) s.thread.join();
  started_ = false;
}

Status ShardPool::post(std::uint32_t shard, std::function<void()> fn) {
  FLEXRIC_ASSERT_AFFINITY(owner_);
  Shard& s = shards_[shard];
  if (mode_ == Mode::manual || !started_) {
    // Single-threaded configurations: the owner thread pumps this loop (or
    // will start it later), so a plain post is safe and keeps the manual
    // harness on one deterministic task queue per shard.
    s.reactor->post(std::move(fn));
    return Status::ok();
  }
  // @producer(shard-injector)
  Status st = s.injector->try_push(std::move(fn));
  if (st.is_ok()) s.wake->notify();
  return st;
}

int ShardPool::pump(int rounds) {
  FLEXRIC_ASSERT_AFFINITY(owner_);
  int handled = 0;
  if (mode_ != Mode::manual) return handled;
  for (Shard& s : shards_)
    for (int i = 0; i < rounds; ++i) {
      int n = s.reactor->run_once(0);
      handled += n;
      if (n == 0) break;
    }
  return handled;
}

}  // namespace flexric
