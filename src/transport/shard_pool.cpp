#include "transport/shard_pool.hpp"

namespace flexric {

namespace {
constexpr std::size_t kInjectorCapacity = 256;

constexpr const char* kShardDomains[ShardPool::kMaxShards] = {
    "shard0",  "shard1",  "shard2",  "shard3", "shard4",  "shard5",
    "shard6",  "shard7",  "shard8",  "shard9", "shard10", "shard11",
    "shard12", "shard13", "shard14", "shard15"};
}  // namespace

const char* ShardPool::domain_name(std::uint32_t shard) noexcept {
  return shard < kMaxShards ? kShardDomains[shard] : "shard";
}

ShardPool::ShardPool(std::uint32_t shards, Mode mode,
                     const VirtualClock* clock)
    : mode_(mode), clock_(clock), health_(shards) {
  FLEXRIC_ASSERT(shards >= 1 && shards <= kMaxShards,
                 "shard count out of range");
  shards_.resize(shards);
  for (std::uint32_t i = 0; i < shards; ++i) init_shard(i);
}

ShardPool::~ShardPool() {
  stop();
  // Universes retired by a forced restart may still be visited by their
  // wedged (detached) thread: leak them deliberately — the OS reclaims at
  // process exit, which is the only point the runaway thread is provably
  // gone. Cooperatively-restarted shards were joined and already freed.
  for (Shard& s : retired_) {
    (void)s.wake.release();
    (void)s.injector.release();
    (void)s.reactor.release();
  }
}

void ShardPool::init_shard(std::uint32_t i) {
  Shard& s = shards_[i];
  s.reactor = std::make_unique<Reactor>(domain_name(i));
  if (clock_ != nullptr) s.reactor->set_time_source(clock_);
  s.injector =
      std::make_unique<SpscRing<std::function<void()>>>(kInjectorCapacity);
  // Drain runs on the shard's loop thread; the ring is the conduit.
  SpscRing<std::function<void()>>* ring = s.injector.get();
  s.wake = std::make_unique<WakeupFd>(*s.reactor, [ring] {
    std::function<void()> fn;
    // @consumer(shard-injector)
    while (ring->try_pop(fn)) fn();
  });
  s.live = std::make_shared<std::atomic<bool>>(true);
  if (heartbeat_period_ > 0) arm_heartbeat(i);
}

void ShardPool::arm_heartbeat(std::uint32_t i) {
  Shard& s = shards_[i];
  Reactor* r = s.reactor.get();
  ShardHealthBoard* health = &health_;
  s.reactor->add_timer(
      heartbeat_period_,
      [r, health, i, live = s.live] {
        // A retired loop keeps firing its timers until the process exits;
        // the incarnation flag keeps it off the replacement's board slot.
        if (!live->load(std::memory_order_relaxed)) return;
        health->beat(i, r->now());
      },
      /*periodic=*/true);
}

void ShardPool::spawn_shard(std::uint32_t i) {
  Shard& s = shards_[i];
  Reactor* r = s.reactor.get();
  Nanos* cpu_out = &s.cpu_ns;
  s.thread = std::thread([r, cpu_out] {
    const Nanos cpu0 = thread_cpu_now();
    r->run();
    *cpu_out = thread_cpu_now() - cpu0;
  });
}

void ShardPool::enable_heartbeat(Nanos period) {
  heartbeat_period_ = period;
  if (period <= 0) return;
  for (std::uint32_t i = 0; i < size(); ++i) arm_heartbeat(i);
}

void ShardPool::start() {
  if (mode_ != Mode::threaded || started_) return;
  started_ = true;
  for (std::uint32_t i = 0; i < size(); ++i) spawn_shard(i);
}

void ShardPool::stop() {
  if (!started_) return;
  for (std::uint32_t i = 0; i < size(); ++i) {
    Reactor* r = shards_[i].reactor.get();
    // The loop must stop itself: Reactor::stop() is not cross-thread safe.
    // The injector ring may be momentarily full under load — spin until the
    // stop task is accepted (the shard is draining, so this terminates).
    while (!post(i, [r] { r->stop(); }).is_ok()) std::this_thread::yield();
  }
  for (Shard& s : shards_)
    if (s.thread.joinable()) s.thread.join();
  started_ = false;
}

Status ShardPool::post(std::uint32_t shard, std::function<void()> fn) {
  FLEXRIC_ASSERT_AFFINITY(owner_);
  Shard& s = shards_[shard];
  if (mode_ == Mode::manual || !started_) {
    // Single-threaded configurations: the owner thread pumps this loop (or
    // will start it later), so a plain post is safe and keeps the manual
    // harness on one deterministic task queue per shard.
    s.reactor->post(std::move(fn));
    return Status::ok();
  }
  // @producer(shard-injector)
  Status st = s.injector->try_push(std::move(fn));
  if (st.is_ok()) s.wake->notify();
  return st;
}

int ShardPool::pump(int rounds) {
  int handled = 0;
  if (mode_ != Mode::manual) return handled;
  for (std::uint32_t i = 0; i < size(); ++i)
    handled += pump_shard(i, rounds);
  return handled;
}

int ShardPool::pump_shard(std::uint32_t shard, int rounds) {
  FLEXRIC_ASSERT_AFFINITY(owner_);
  int handled = 0;
  if (mode_ != Mode::manual) return handled;
  Shard& s = shards_[shard];
  for (int i = 0; i < rounds; ++i) {
    int n = s.reactor->run_once(0);
    handled += n;
    if (n == 0) break;
  }
  return handled;
}

void ShardPool::restart_shard(std::uint32_t shard) {
  FLEXRIC_ASSERT_AFFINITY(owner_);
  Shard& s = shards_[shard];
  // Silence the dying incarnation's heartbeat before the replacement
  // claims the board slot (single writer per slot).
  if (s.live) s.live->store(false, std::memory_order_relaxed);
  if (mode_ == Mode::threaded && started_ && s.thread.joinable()) {
    // A loop the watchdog condemned cannot be joined — joining a wedged
    // thread blocks forever, and std::thread has no timed join. Detach it
    // and retire its whole universe; ~ShardPool leaks retirees
    // deliberately. (A *planned* restart of a healthy pool goes through
    // stop()/start(), which does join.)
    s.thread.detach();
    retired_.push_back(std::move(s));
    s = Shard{};
  } else {
    // Manual mode (or not yet started): destroy the dead universe in
    // place. Order matters — the wake fd unregisters from the reactor it
    // watches.
    s.wake.reset();
    s.injector.reset();
    s.reactor.reset();
  }
  health_.reset(shard);
  init_shard(shard);
  if (mode_ == Mode::threaded && started_) spawn_shard(shard);
  restarts_++;
}

}  // namespace flexric
