// FlexRAN baseline protocol (comparator for Figs. 6–8).
//
// Reproduces the design properties the paper attributes to FlexRAN [1]:
//   * custom south-bound protocol, tightly coupled to the RAT;
//   * Protobuf encoding (our proto codec), single-encoded (no E2AP/E2SM
//     double encoding — its advantage in Fig. 7b);
//   * statistics delivered periodically but consumed by POLLING: the
//     controller stores reports in a RIB and applications scan it every
//     millisecond (its disadvantage in §5.3);
//   * monolithic per-UE stats report (MAC+RLC+PDCP in one message).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "e2sm/serde.hpp"

namespace flexric::baseline::flexran {

enum class MsgKind : std::uint8_t {
  hello = 0,        ///< agent -> controller: node announce
  hello_ack,        ///< controller -> agent
  stats_request,    ///< controller -> agent: start periodic reports
  stats_report,     ///< agent -> controller
  echo_request,     ///< controller -> agent (RTT probe)
  echo_reply,       ///< agent -> controller
  slice_config,     ///< controller -> agent (slice control)
};

/// Monolithic per-UE statistics (MAC + RLC + PDCP in one record, "covering
/// approximately the same data" as the FlexRIC stats SMs, §5.1).
struct UeStats {
  std::uint16_t rnti = 0;
  std::uint8_t cqi = 0;
  std::uint8_t mcs_dl = 0;
  std::uint32_t prbs_dl = 0;
  std::uint64_t mac_bytes_dl = 0;
  std::uint32_t bsr = 0;
  std::uint32_t rlc_buffer_bytes = 0;
  std::uint32_t rlc_buffer_pkts = 0;
  double rlc_sojourn_avg_ms = 0.0;
  std::uint64_t pdcp_tx_sdu_bytes = 0;
  std::uint32_t pdcp_tx_sdus = 0;
  std::uint32_t slice_id = 0;
  bool operator==(const UeStats&) const = default;
};

template <typename A>
void serde(A& a, UeStats& s) {
  a.u16(s.rnti);
  a.u8(s.cqi);
  a.u8(s.mcs_dl);
  a.u32(s.prbs_dl);
  a.u64(s.mac_bytes_dl);
  a.u32(s.bsr);
  a.u32(s.rlc_buffer_bytes);
  a.u32(s.rlc_buffer_pkts);
  a.f64(s.rlc_sojourn_avg_ms);
  a.u64(s.pdcp_tx_sdu_bytes);
  a.u32(s.pdcp_tx_sdus);
  a.u32(s.slice_id);
}

struct Hello {
  std::uint32_t bs_id = 0;
  std::string rat = "lte";
  std::uint32_t num_prbs = 25;
  bool operator==(const Hello&) const = default;
};

template <typename A>
void serde(A& a, Hello& h) {
  a.u32(h.bs_id);
  a.str(h.rat);
  a.u32(h.num_prbs);
}

struct StatsRequest {
  std::uint32_t period_ms = 1;
  bool operator==(const StatsRequest&) const = default;
};

template <typename A>
void serde(A& a, StatsRequest& r) {
  a.u32(r.period_ms);
}

struct StatsReport {
  std::uint32_t bs_id = 0;
  std::uint64_t tstamp_ns = 0;
  std::vector<UeStats> ues;
  bool operator==(const StatsReport&) const = default;
};

template <typename A>
void serde(A& a, StatsReport& r) {
  a.u32(r.bs_id);
  a.u64(r.tstamp_ns);
  a.vec(r.ues);
}

struct Echo {
  std::uint32_t seq = 0;
  std::uint64_t sent_ns = 0;
  Buffer payload;
  bool operator==(const Echo&) const = default;
};

template <typename A>
void serde(A& a, Echo& e) {
  a.u32(e.seq);
  a.u64(e.sent_ns);
  a.bytes(e.payload);
}

/// Framed protocol message: 1-byte kind + proto-encoded body.
Buffer encode_frame(MsgKind kind, BytesView body);
// @view_of(the wire buffer handed to decode_frame)
struct Frame {
  MsgKind kind;
  BytesView body;
};
Result<Frame> decode_frame(BytesView wire);

template <typename T>
Buffer encode_msg(MsgKind kind, const T& msg) {
  Buffer body = e2sm::sm_encode(msg, WireFormat::proto);
  return encode_frame(kind, body);
}

}  // namespace flexric::baseline::flexran
