#include "baseline/flexran/flexran.hpp"

#include "common/log.hpp"

namespace flexric::baseline::flexran {

Buffer encode_frame(MsgKind kind, BytesView body) {
  BufWriter w(1 + body.size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.bytes(body);
  return w.take();
}

Result<Frame> decode_frame(BytesView wire) {
  if (wire.empty()) return Error{Errc::truncated, "empty frame"};
  Frame f;
  f.kind = static_cast<MsgKind>(wire[0]);
  f.body = wire.subspan(1);
  return f;
}

// ---------------------------------------------------------------------------
// Agent
// ---------------------------------------------------------------------------

Agent::Agent(ran::BaseStation& bs, std::shared_ptr<MsgTransport> transport,
             std::uint32_t bs_id)
    : bs_(bs), transport_(std::move(transport)), bs_id_(bs_id) {
  transport_->set_on_message(
      [this](StreamId, BytesView wire) { on_message(wire); });
  Hello hello;
  hello.bs_id = bs_id_;
  hello.rat = bs_.config().rat == ran::Rat::lte ? "lte" : "nr";
  hello.num_prbs = bs_.config().num_prbs;
  (void)transport_->send(encode_msg(MsgKind::hello, hello));
}

void Agent::on_message(BytesView wire) {
  auto frame = decode_frame(wire);
  if (!frame) return;
  switch (frame->kind) {
    case MsgKind::stats_request: {
      auto req = e2sm::sm_decode<StatsRequest>(frame->body, WireFormat::proto);
      if (req) period_ms_ = req->period_ms;
      break;
    }
    case MsgKind::echo_request: {
      auto echo = e2sm::sm_decode<Echo>(frame->body, WireFormat::proto);
      if (!echo) break;
      stats_.echo_rx++;
      (void)transport_->send(encode_msg(MsgKind::echo_reply, *echo));
      break;
    }
    case MsgKind::hello_ack:
    default:
      break;
  }
}

StatsReport Agent::build_report(Nanos now) {
  StatsReport report;
  report.bs_id = bs_id_;
  report.tstamp_ns = static_cast<std::uint64_t>(now);
  auto mac = bs_.mac_stats(/*include_harq=*/false, {});
  auto rlc = bs_.rlc_stats({});
  auto pdcp = bs_.pdcp_stats({});
  for (const auto& m : mac.ues) {
    UeStats s;
    s.rnti = m.rnti;
    s.cqi = m.cqi;
    s.mcs_dl = m.mcs_dl;
    s.prbs_dl = m.prbs_dl;
    s.mac_bytes_dl = m.bytes_dl;
    s.bsr = m.bsr;
    s.slice_id = m.slice_id;
    for (const auto& r : rlc.bearers)
      if (r.rnti == m.rnti) {
        s.rlc_buffer_bytes += r.buffer_bytes;
        s.rlc_buffer_pkts += r.buffer_pkts;
        s.rlc_sojourn_avg_ms = r.sojourn_avg_ms;
      }
    for (const auto& p : pdcp.bearers)
      if (p.rnti == m.rnti) {
        s.pdcp_tx_sdu_bytes += p.tx_sdu_bytes;
        s.pdcp_tx_sdus += p.tx_sdus;
      }
    report.ues.push_back(s);
  }
  return report;
}

void Agent::on_tti(Nanos now) {
  if (period_ms_ == 0 || now < next_due_) return;
  next_due_ = now + static_cast<Nanos>(period_ms_) * kMilli;
  StatsReport report = build_report(now);
  Buffer wire = encode_msg(MsgKind::stats_report, report);
  stats_.reports_tx++;
  stats_.bytes_tx += wire.size();
  (void)transport_->send(wire);
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

Controller::Controller(Reactor& reactor) : reactor_(reactor) {}

Controller::~Controller() {
  // The poller lambdas capture `this`; kill them before the members unwind.
  for (Reactor::TimerId id : poller_timers_) reactor_.cancel_timer(id);
  // Detach callbacks before the connection map unwinds: a transport's close
  // handler must not mutate conns_ mid-destruction.
  for (auto& [id, t] : conns_) {
    t->set_on_message(nullptr);
    t->set_on_close(nullptr);
  }
}

Status Controller::listen(std::uint16_t port) {
  listener_ = std::make_unique<TcpListener>(
      reactor_, [this](std::unique_ptr<TcpTransport> t) {
        attach(std::shared_ptr<MsgTransport>(std::move(t)));
      });
  return listener_->listen(port);
}

void Controller::attach(std::shared_ptr<MsgTransport> transport) {
  std::uint64_t id = next_conn_++;
  transport->set_on_message(
      [this, id](StreamId, BytesView wire) { on_message(id, wire); });
  transport->set_on_close([this, id]() { conns_.erase(id); });
  conns_[id] = std::move(transport);
}

void Controller::request_stats(std::uint32_t period_ms) {
  StatsRequest req;
  req.period_ms = period_ms;
  Buffer wire = encode_msg(MsgKind::stats_request, req);
  for (auto& [id, t] : conns_) (void)t->send(wire);
}

void Controller::add_poller(
    std::uint32_t period_ms,
    std::function<void(const std::map<std::uint32_t, Rib>&)> fn) {
  poller_timers_.push_back(
      // lint: allow(posted-lambda-lifetime) timer id is recorded in poller_timers_ and cancelled in ~Controller
      reactor_.add_timer(static_cast<Nanos>(period_ms) * kMilli,
                         [this, fn = std::move(fn)]() {
                           stats_.poll_scans++;
                           fn(ribs_);
                         }));
}

Status Controller::send_echo(
    std::uint32_t seq, BytesView payload,
    std::function<void(const Echo&, Nanos rx_time)> on_reply) {
  if (conns_.empty()) return {Errc::not_found, "no agents"};
  echo_cb_ = std::move(on_reply);
  Echo echo;
  echo.seq = seq;
  echo.sent_ns = static_cast<std::uint64_t>(mono_now());
  echo.payload.assign(payload.begin(), payload.end());
  return conns_.begin()->second->send(encode_msg(MsgKind::echo_request, echo));
}

void Controller::on_message(std::uint64_t, BytesView wire) {
  stats_.msgs_rx++;
  stats_.bytes_rx += wire.size();
  auto frame = decode_frame(wire);
  if (!frame) return;
  switch (frame->kind) {
    case MsgKind::hello: {
      auto hello = e2sm::sm_decode<Hello>(frame->body, WireFormat::proto);
      if (hello) ribs_[hello->bs_id];  // create RIB entry
      break;
    }
    case MsgKind::stats_report: {
      auto report =
          e2sm::sm_decode<StatsReport>(frame->body, WireFormat::proto);
      if (!report) break;
      Rib& rib = ribs_[report->bs_id];
      rib.reports_rx++;
      rib.history.push_back(std::move(*report));  // deep copy retained
      if (rib.history.size() > kHistoryDepth) rib.history.pop_front();
      break;
    }
    case MsgKind::echo_reply: {
      auto echo = e2sm::sm_decode<Echo>(frame->body, WireFormat::proto);
      if (echo && echo_cb_) echo_cb_(*echo, mono_now());
      break;
    }
    default:
      break;
  }
}

}  // namespace flexric::baseline::flexran
