// FlexRAN baseline agent + controller.
//
// The agent exports the monolithic stats report at the configured period
// (1 ms in the evaluation); the controller stores every report in its RIB
// (RAN information base), retaining a deep history per base station — the
// memory behaviour the paper measures (375 MB vs 124 MB, Fig. 8a). An
// application does NOT get callbacks: it registers a poller that the
// controller's 1 ms timer invokes to scan the RIB for new entries, whether
// or not anything arrived (the polling overhead of §5.3).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "baseline/flexran/protocol.hpp"
#include "ran/base_station.hpp"
#include "transport/transport.hpp"

namespace flexric::baseline::flexran {

class Agent {
 public:
  Agent(ran::BaseStation& bs, std::shared_ptr<MsgTransport> transport,
        std::uint32_t bs_id);

  /// Virtual-time tick (mirrors the FlexRIC agent's on_tti driving).
  void on_tti(Nanos now);

  struct Stats {
    std::uint64_t reports_tx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t echo_rx = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void on_message(BytesView wire);
  StatsReport build_report(Nanos now);

  ran::BaseStation& bs_;
  std::shared_ptr<MsgTransport> transport_;
  std::uint32_t bs_id_;
  std::uint32_t period_ms_ = 0;  ///< 0 = reporting off
  Nanos next_due_ = 0;
  Stats stats_;
};

class Controller {
 public:
  explicit Controller(Reactor& reactor);
  ~Controller();

  Status listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_ ? listener_->port() : 0;
  }
  void attach(std::shared_ptr<MsgTransport> transport);

  /// Ask every connected agent for periodic stats.
  void request_stats(std::uint32_t period_ms);

  /// RIB: retained report history per BS (the FlexRAN memory footprint).
  struct Rib {
    std::deque<StatsReport> history;  ///< newest at back
    std::uint64_t reports_rx = 0;
  };
  [[nodiscard]] const std::map<std::uint32_t, Rib>& rib() const noexcept {
    return ribs_;
  }

  /// Polling application model: `poller` runs every `period_ms` on a timer
  /// and scans the RIB (receives the full RIB map each time).
  void add_poller(std::uint32_t period_ms,
                  std::function<void(const std::map<std::uint32_t, Rib>&)> fn);

  /// RTT probe (Fig. 7): send an echo to the first agent; `on_reply` runs
  /// when the reply arrives at the controller's networking queue.
  Status send_echo(std::uint32_t seq, BytesView payload,
                   std::function<void(const Echo&, Nanos rx_time)> on_reply);

  struct Stats {
    std::uint64_t msgs_rx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t poll_scans = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// History depth retained per BS.
  static constexpr std::size_t kHistoryDepth = 1024;

 private:
  void on_message(std::uint64_t conn_id, BytesView wire);

  Reactor& reactor_;
  std::unique_ptr<TcpListener> listener_;
  std::vector<Reactor::TimerId> poller_timers_;  // cancelled in ~Controller
  std::map<std::uint64_t, std::shared_ptr<MsgTransport>> conns_;
  std::uint64_t next_conn_ = 1;
  std::map<std::uint32_t, Rib> ribs_;
  std::function<void(const Echo&, Nanos)> echo_cb_;
  Stats stats_;
};

}  // namespace flexric::baseline::flexran
