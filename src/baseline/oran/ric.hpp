// O-RAN RIC baseline: "E2 termination" + xApp, two hops, double decode
// (comparator for Fig. 9 and Table 2).
//
// Architecture reproduced from the paper's description of the Cherry
// release:
//   agent ──E2AP/SCTP-like──▶ E2Termination ──RMR hop──▶ xApp
//
// The E2 termination fully DECODES every E2AP message to route it (first
// decode), consults a Redis-like string-keyed registry, then forwards the
// raw bytes over a second transport hop wrapped in an RMR header. The xApp
// decodes the E2AP message AGAIN (second decode) before touching the SM
// payload — "indication messages are decoded twice, once in the E2
// termination, and the xApp" (§5.4). All E2AP traffic uses ASN.1 (PER), as
// O-RAN mandates.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "e2ap/codec.hpp"
#include "e2sm/mac_sm.hpp"
#include "transport/transport.hpp"

namespace flexric::baseline::oran {

/// The E2 termination platform component.
class E2Termination {
 public:
  explicit E2Termination(Reactor& reactor);
  ~E2Termination();

  /// South-bound: accept agents.
  Status listen_e2(std::uint16_t port);
  [[nodiscard]] std::uint16_t e2_port() const noexcept {
    return e2_listener_ ? e2_listener_->port() : 0;
  }
  void attach_agent(std::shared_ptr<MsgTransport> transport);

  /// North-bound: accept xApps over the RMR hop.
  Status listen_rmr(std::uint16_t port);
  [[nodiscard]] std::uint16_t rmr_port() const noexcept {
    return rmr_listener_ ? rmr_listener_->port() : 0;
  }
  void attach_xapp(std::shared_ptr<MsgTransport> transport);

  struct Stats {
    std::uint64_t e2_msgs_rx = 0;
    std::uint64_t e2_decodes = 0;   ///< first decode of the double decode
    std::uint64_t rmr_forwards = 0;
    std::uint64_t registry_lookups = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void on_agent_message(std::uint64_t conn, BytesView wire);
  void on_xapp_message(std::uint64_t conn, BytesView wire);
  /// Redis-like registry access: string-keyed lookups, as the platform's
  /// shared data layer (SDL) performs for routing decisions.
  std::uint64_t registry_get(const std::string& key);
  void registry_set(const std::string& key, std::uint64_t value);

  Reactor& reactor_;
  const e2ap::Codec& codec_;
  std::unique_ptr<TcpListener> e2_listener_;
  std::unique_ptr<TcpListener> rmr_listener_;
  std::map<std::uint64_t, std::shared_ptr<MsgTransport>> agents_;
  std::map<std::uint64_t, std::shared_ptr<MsgTransport>> xapps_;
  std::uint64_t next_conn_ = 1;
  std::map<std::string, std::uint64_t> registry_;  ///< SDL stand-in
  Stats stats_;
};

/// A monitoring/ping xApp speaking RMR to the E2 termination.
class OranXapp {
 public:
  OranXapp(Reactor& reactor, std::shared_ptr<MsgTransport> rmr_conn,
           WireFormat sm_format);
  ~OranXapp();

  /// Subscribe to a RAN function on the (single) connected E2 node.
  Status subscribe(std::uint16_t ran_function_id, Buffer event_trigger,
                   std::vector<e2ap::Action> actions);
  /// Send a RIC control (e.g. the HW ping).
  Status send_control(std::uint16_t ran_function_id, Buffer header,
                      Buffer message);

  using IndicationHandler = std::function<void(const e2ap::Indication&)>;
  void set_on_indication(IndicationHandler h) { on_ind_ = std::move(h); }

  /// Latest MAC stats per UE (monitoring use case of Fig. 9b).
  [[nodiscard]] const std::map<std::uint16_t, e2sm::mac::UeStats>& db()
      const noexcept {
    return db_;
  }

  struct Stats {
    std::uint64_t indications_rx = 0;
    std::uint64_t e2_decodes = 0;  ///< second decode of the double decode
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void on_message(BytesView wire);

  const e2ap::Codec& codec_;
  std::shared_ptr<MsgTransport> conn_;
  WireFormat sm_fmt_;
  IndicationHandler on_ind_;
  std::uint16_t next_instance_ = 1;
  std::map<std::uint16_t, e2sm::mac::UeStats> db_;
  Stats stats_;
};

}  // namespace flexric::baseline::oran
