// RMR-like message routing shim (O-RAN RIC baseline).
//
// O-RAN's RIC Message Router (RMR) prefixes every message with a routing
// header (message type + subscription id) and delivers it over a separate
// hop between platform components. This shim reproduces that framing and
// the extra copy it implies.
#pragma once

#include <cstdint>

#include "common/buffer.hpp"
#include "common/result.hpp"

namespace flexric::baseline::oran {

/// RMR message types used by the E2 termination <-> xApp path.
enum class RmrType : std::uint32_t {
  e2ap_pdu = 12050,       ///< raw E2AP bytes (indication and responses)
  sub_request = 12010,    ///< xApp -> E2T subscription
  control_request = 12040,
  health_check = 100,
};

// @view_of(the RMR wire buffer passed to rmr_decode)
struct RmrMsg {
  RmrType mtype = RmrType::e2ap_pdu;
  std::int32_t sub_id = -1;
  BytesView payload;  ///< view into the wire buffer
};

inline Buffer rmr_encode(RmrType mtype, std::int32_t sub_id,
                         BytesView payload) {
  BufWriter w(12 + payload.size());
  w.u32(static_cast<std::uint32_t>(mtype));
  w.u32(static_cast<std::uint32_t>(sub_id));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  return w.take();
}

inline Result<RmrMsg> rmr_decode(BytesView wire) {
  BufReader r(wire);
  RmrMsg m;
  auto mtype = r.u32();
  if (!mtype) return mtype.error();
  m.mtype = static_cast<RmrType>(*mtype);
  auto sub = r.u32();
  if (!sub) return sub.error();
  m.sub_id = static_cast<std::int32_t>(*sub);
  auto len = r.u32();
  if (!len) return len.error();
  auto payload = r.bytes(*len);
  if (!payload) return payload.error();
  m.payload = *payload;
  return m;
}

}  // namespace flexric::baseline::oran
