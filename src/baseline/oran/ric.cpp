#include "baseline/oran/ric.hpp"

#include "baseline/oran/rmr.hpp"
#include "common/log.hpp"
#include "e2sm/serde.hpp"

namespace flexric::baseline::oran {

// ---------------------------------------------------------------------------
// E2Termination
// ---------------------------------------------------------------------------

E2Termination::E2Termination(Reactor& reactor)
    : reactor_(reactor), codec_(e2ap::per_codec()) {}

E2Termination::~E2Termination() {
  for (auto* conns : {&agents_, &xapps_})
    for (auto& [id, t] : *conns) {
      t->set_on_message(nullptr);
      t->set_on_close(nullptr);
    }
}

Status E2Termination::listen_e2(std::uint16_t port) {
  e2_listener_ = std::make_unique<TcpListener>(
      reactor_, [this](std::unique_ptr<TcpTransport> t) {
        attach_agent(std::shared_ptr<MsgTransport>(std::move(t)));
      });
  return e2_listener_->listen(port);
}

Status E2Termination::listen_rmr(std::uint16_t port) {
  rmr_listener_ = std::make_unique<TcpListener>(
      reactor_, [this](std::unique_ptr<TcpTransport> t) {
        attach_xapp(std::shared_ptr<MsgTransport>(std::move(t)));
      });
  return rmr_listener_->listen(port);
}

void E2Termination::attach_agent(std::shared_ptr<MsgTransport> transport) {
  std::uint64_t id = next_conn_++;
  transport->set_on_message(
      [this, id](StreamId, BytesView wire) { on_agent_message(id, wire); });
  transport->set_on_close([this, id]() { agents_.erase(id); });
  agents_[id] = std::move(transport);
}

void E2Termination::attach_xapp(std::shared_ptr<MsgTransport> transport) {
  std::uint64_t id = next_conn_++;
  transport->set_on_message(
      [this, id](StreamId, BytesView wire) { on_xapp_message(id, wire); });
  transport->set_on_close([this, id]() { xapps_.erase(id); });
  xapps_[id] = std::move(transport);
}

std::uint64_t E2Termination::registry_get(const std::string& key) {
  stats_.registry_lookups++;
  auto it = registry_.find(key);
  return it == registry_.end() ? 0 : it->second;
}

void E2Termination::registry_set(const std::string& key,
                                 std::uint64_t value) {
  registry_[key] = value;
}

void E2Termination::on_agent_message(std::uint64_t conn, BytesView wire) {
  stats_.e2_msgs_rx++;
  // First decode: the E2 termination must parse the full E2AP PDU to
  // classify and route it.
  auto msg = codec_.decode(wire);
  stats_.e2_decodes++;
  if (!msg) {
    LOG_WARN("e2term", "undecodable E2AP from agent: %s",
             msg.error().to_string().c_str());
    return;
  }
  switch (e2ap::msg_type(*msg)) {
    case e2ap::MsgType::setup_request: {
      const auto& setup = std::get<e2ap::SetupRequest>(*msg);
      // Register the node and its functions in the SDL-like registry.
      registry_set("e2node:" + std::to_string(setup.node.nb_id), conn);
      for (const auto& f : setup.ran_functions)
        registry_set("ranfunc:" + std::to_string(f.id), conn);
      e2ap::SetupResponse resp;
      resp.trans_id = setup.trans_id;
      resp.ric_id = 42;
      for (const auto& f : setup.ran_functions)
        resp.accepted.push_back(f.id);
      auto out = codec_.encode(e2ap::Msg{std::move(resp)});
      if (out) (void)agents_[conn]->send(*out);
      return;
    }
    case e2ap::MsgType::indication: {
      const auto& ind = std::get<e2ap::Indication>(*msg);
      // Route by subscription id through the registry, then forward the
      // ORIGINAL bytes over the RMR hop (extra copy + second decode at the
      // xApp).
      std::uint64_t xapp = registry_get(
          "sub:" + std::to_string(ind.request.requestor) + ":" +
          std::to_string(ind.request.instance));
      auto it = xapps_.find(xapp);
      if (it == xapps_.end() && !xapps_.empty()) it = xapps_.begin();
      if (it == xapps_.end()) return;
      Buffer rmr = rmr_encode(RmrType::e2ap_pdu,
                              static_cast<std::int32_t>(ind.request.instance),
                              wire);
      stats_.rmr_forwards++;
      (void)it->second->send(rmr);
      return;
    }
    default: {
      // Subscription/control responses etc.: route to the requesting xApp.
      Buffer rmr = rmr_encode(RmrType::e2ap_pdu, -1, wire);
      stats_.rmr_forwards++;
      if (!xapps_.empty()) (void)xapps_.begin()->second->send(rmr);
      return;
    }
  }
}

void E2Termination::on_xapp_message(std::uint64_t conn, BytesView wire) {
  auto rmr = rmr_decode(wire);
  if (!rmr) return;
  // Decode to learn routing data (subscription registration), then
  // re-encode nothing: forward original payload bytes to the agent.
  auto msg = codec_.decode(rmr->payload);
  stats_.e2_decodes++;
  if (!msg) return;
  if (e2ap::msg_type(*msg) == e2ap::MsgType::subscription_request) {
    const auto& sub = std::get<e2ap::SubscriptionRequest>(*msg);
    registry_set("sub:" + std::to_string(sub.request.requestor) + ":" +
                     std::to_string(sub.request.instance),
                 conn);
  }
  std::uint64_t agent = 0;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (requires {
                        requires std::is_same_v<
                            std::decay_t<decltype(m.ran_function_id)>,
                            std::uint16_t>;
                      })
          agent = registry_get("ranfunc:" +
                               std::to_string(m.ran_function_id));
        (void)m;
      },
      *msg);
  auto it = agents_.find(agent);
  if (it == agents_.end() && !agents_.empty()) it = agents_.begin();
  if (it == agents_.end()) return;
  Buffer copy(rmr->payload.begin(), rmr->payload.end());  // RMR copy-out
  (void)it->second->send(copy);
}

// ---------------------------------------------------------------------------
// OranXapp
// ---------------------------------------------------------------------------

OranXapp::OranXapp(Reactor&, std::shared_ptr<MsgTransport> rmr_conn,
                   WireFormat sm_format)
    : codec_(e2ap::per_codec()), conn_(std::move(rmr_conn)),
      sm_fmt_(sm_format) {
  conn_->set_on_message(
      [this](StreamId, BytesView wire) { on_message(wire); });
}

OranXapp::~OranXapp() {
  conn_->set_on_message(nullptr);
  conn_->set_on_close(nullptr);
}

Status OranXapp::subscribe(std::uint16_t ran_function_id, Buffer event_trigger,
                           std::vector<e2ap::Action> actions) {
  e2ap::SubscriptionRequest req;
  req.request.requestor = 7;  // xApp id
  req.request.instance = next_instance_++;
  req.ran_function_id = ran_function_id;
  req.event_trigger = std::move(event_trigger);
  req.actions = std::move(actions);
  auto wire = codec_.encode(e2ap::Msg{std::move(req)});
  if (!wire) return wire.status();
  return conn_->send(rmr_encode(RmrType::sub_request, -1, *wire));
}

Status OranXapp::send_control(std::uint16_t ran_function_id, Buffer header,
                              Buffer message) {
  e2ap::ControlRequest req;
  req.request.requestor = 7;
  req.request.instance = next_instance_++;
  req.ran_function_id = ran_function_id;
  req.header = std::move(header);
  req.message = std::move(message);
  req.ack_requested = false;
  auto wire = codec_.encode(e2ap::Msg{std::move(req)});
  if (!wire) return wire.status();
  return conn_->send(rmr_encode(RmrType::control_request, -1, *wire));
}

void OranXapp::on_message(BytesView wire) {
  auto rmr = rmr_decode(wire);
  if (!rmr) return;
  // Second decode of the same E2AP PDU (the double-decode overhead).
  auto msg = codec_.decode(rmr->payload);
  stats_.e2_decodes++;
  if (!msg) return;
  if (e2ap::msg_type(*msg) != e2ap::MsgType::indication) return;
  const auto& ind = std::get<e2ap::Indication>(*msg);
  stats_.indications_rx++;
  // Monitoring use case: parse MAC stats into the xApp-local DB.
  auto stats = e2sm::sm_decode<e2sm::mac::IndicationMsg>(ind.message, sm_fmt_);
  if (stats)
    for (const auto& ue : stats->ues) db_[ue.rnti] = ue;
  if (on_ind_) on_ind_(ind);
}

}  // namespace flexric::baseline::oran
