// Greedy TCP-Cubic-like flow (the iperf3 workload of §6.1.1).
//
// A window-based sender over the simulated path: slow start, cubic window
// growth (RFC 8312 shape), multiplicative decrease on loss, one reaction per
// congestion epoch. Being loss-based, it fills the deepest buffer before the
// bottleneck — the RLC DRB queue — producing exactly the bufferbloat
// phenomenon Fig. 11 studies ("the algorithm cannot differentiate between
// the propagation time and the large sojourn time ... in a bloated buffer").
#pragma once

#include <algorithm>
#include <cmath>

#include "flows/flow.hpp"

namespace flexric::flows {

class CubicSource final : public FlowSource {
 public:
  CubicSource(std::uint64_t flow_id, e2sm::tc::FiveTuple tuple,
              Nanos start_time = 0, std::uint32_t mss = 1448)
      : id_(flow_id), tuple_(tuple), start_(start_time), mss_(mss) {
    cwnd_ = 10.0 * mss_;  // RFC 6928 initial window
    ssthresh_ = 1e12;
  }

  void tick(Nanos now, const EmitFn& emit) override {
    if (now < start_) return;
    // ACK-clocked: emit while the window has room. Cap the per-tick burst
    // to keep the 1 ms discretization from dumping the whole window at once.
    std::uint32_t burst = 0;
    while (static_cast<double>(inflight_ + mss_) <= cwnd_ &&
           burst < kMaxBurstPerTick) {
      ran::Packet p;
      p.size_bytes = mss_;
      p.tuple = tuple_;
      p.flow_id = id_;
      p.seq = seq_++;
      p.created = now;
      inflight_ += mss_;
      ++burst;
      emit(p);
    }
  }

  void on_ack(const ran::Packet& p, Nanos ack_time) override {
    inflight_ -= std::min<std::uint64_t>(inflight_, mss_);
    delivered_bytes_ += p.size_bytes;
    double rtt_s = static_cast<double>(ack_time - p.created) /
                   static_cast<double>(kSecond);
    srtt_s_ = srtt_s_ <= 0 ? rtt_s : 0.875 * srtt_s_ + 0.125 * rtt_s;
    if (cwnd_ < ssthresh_) {
      cwnd_ += mss_;  // slow start
      return;
    }
    // Cubic congestion avoidance: W(t) = C (t-K)^3 + Wmax.
    double t = static_cast<double>(ack_time - epoch_start_) /
               static_cast<double>(kSecond);
    double target =
        kC * std::pow(t - k_, 3.0) * mss_ + w_max_;
    if (target > cwnd_)
      cwnd_ += (target - cwnd_) / std::max(cwnd_ / mss_, 1.0);
    else
      cwnd_ += 0.01 * mss_;  // TCP-friendly minimum growth
  }

  void on_drop(const ran::Packet& p, Nanos now) override {
    drops_++;
    inflight_ -= std::min<std::uint64_t>(inflight_, mss_);
    // One multiplicative decrease per congestion epoch (fast-recovery
    // analogue): ignore further losses of packets sent before the event.
    if (p.seq < recovery_seq_) return;
    recovery_seq_ = seq_;
    w_max_ = cwnd_;
    cwnd_ = std::max(cwnd_ * kBeta, 2.0 * mss_);
    ssthresh_ = cwnd_;
    epoch_start_ = now;
    k_ = std::cbrt(w_max_ * (1.0 - kBeta) / (kC * mss_));
  }

  [[nodiscard]] std::uint64_t flow_id() const noexcept override { return id_; }
  [[nodiscard]] const e2sm::tc::FiveTuple& tuple() const noexcept override {
    return tuple_;
  }

  [[nodiscard]] double cwnd_bytes() const noexcept { return cwnd_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const noexcept {
    return delivered_bytes_;
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] double srtt_ms() const noexcept { return srtt_s_ * 1e3; }

 private:
  static constexpr double kC = 0.4;     // cubic scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease
  static constexpr std::uint32_t kMaxBurstPerTick = 64;

  std::uint64_t id_;
  e2sm::tc::FiveTuple tuple_;
  Nanos start_;
  std::uint32_t mss_;
  double cwnd_;
  double ssthresh_;
  double w_max_ = 0.0;
  double k_ = 0.0;
  Nanos epoch_start_ = 0;
  std::uint64_t inflight_ = 0;
  std::uint32_t seq_ = 0;
  std::uint32_t recovery_seq_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t drops_ = 0;
  double srtt_s_ = 0.0;
};

}  // namespace flexric::flows
