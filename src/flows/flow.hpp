// Traffic source interface for the simulated end-to-end path.
//
// Sources run in virtual time: TrafficManager ticks them every TTI and they
// emit downlink IP packets; deliveries and drops are reported back so
// window-based sources (Cubic) can react. See DESIGN.md: these replace the
// paper's iperf3 (greedy TCP) and irtt (VoIP) tools.
#pragma once

#include <cstdint>
#include <functional>

#include "common/clock.hpp"
#include "ran/packet.hpp"

namespace flexric::flows {

using EmitFn = std::function<void(ran::Packet)>;

class FlowSource {
 public:
  virtual ~FlowSource() = default;

  /// Called once per TTI; emit any packets due at `now`.
  virtual void tick(Nanos now, const EmitFn& emit) = 0;
  /// The packet was delivered to the UE and its ack/echo arrived back at
  /// the sender at `ack_time`.
  virtual void on_ack(const ran::Packet& p, Nanos ack_time) = 0;
  /// The packet was dropped in the RAN (queue overflow).
  virtual void on_drop(const ran::Packet& p, Nanos now) = 0;

  [[nodiscard]] virtual std::uint64_t flow_id() const noexcept = 0;
  [[nodiscard]] virtual const e2sm::tc::FiveTuple& tuple() const noexcept = 0;
};

}  // namespace flexric::flows
