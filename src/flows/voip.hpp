// VoIP flow: G.711 over UDP — 172-byte frames every 20 ms (64 kbps), the
// irtt workload of §6.1.1. Measures per-packet RTT (send → radio delivery →
// return path) into a histogram, from which Fig. 11c's CDF is produced.
#pragma once

#include "common/metrics.hpp"
#include "flows/flow.hpp"

namespace flexric::flows {

class VoipSource final : public FlowSource {
 public:
  VoipSource(std::uint64_t flow_id, e2sm::tc::FiveTuple tuple,
             Nanos start_time = 0, std::uint32_t frame_bytes = 172,
             Nanos interval = 20 * kMilli)
      : id_(flow_id),
        tuple_(tuple),
        next_send_(start_time),
        frame_bytes_(frame_bytes),
        interval_(interval) {}

  void tick(Nanos now, const EmitFn& emit) override {
    while (now >= next_send_) {
      ran::Packet p;
      p.size_bytes = frame_bytes_;
      p.tuple = tuple_;
      p.flow_id = id_;
      p.seq = seq_++;
      p.created = next_send_;
      emit(p);
      next_send_ += interval_;
    }
  }

  void on_ack(const ran::Packet& p, Nanos ack_time) override {
    double rtt_ms = static_cast<double>(ack_time - p.created) /
                    static_cast<double>(kMilli);
    rtt_ms_.record(rtt_ms);
  }
  void on_drop(const ran::Packet&, Nanos) override { drops_++; }

  [[nodiscard]] std::uint64_t flow_id() const noexcept override { return id_; }
  [[nodiscard]] const e2sm::tc::FiveTuple& tuple() const noexcept override {
    return tuple_;
  }

  [[nodiscard]] const Histogram& rtt_ms() const noexcept { return rtt_ms_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }

 private:
  std::uint64_t id_;
  e2sm::tc::FiveTuple tuple_;
  Nanos next_send_;
  std::uint32_t frame_bytes_;
  Nanos interval_;
  std::uint32_t seq_ = 0;
  Histogram rtt_ms_;
  std::uint64_t drops_ = 0;
};

/// Constant-bit-rate UDP flow (building block for load experiments).
class CbrSource final : public FlowSource {
 public:
  CbrSource(std::uint64_t flow_id, e2sm::tc::FiveTuple tuple, double mbps,
            std::uint32_t packet_bytes = 1400, Nanos start_time = 0)
      : id_(flow_id), tuple_(tuple), packet_bytes_(packet_bytes) {
    double pps = mbps * 1e6 / 8.0 / packet_bytes;
    interval_ = pps > 0 ? static_cast<Nanos>(1e9 / pps) : kSecond;
    next_send_ = start_time;
  }

  void tick(Nanos now, const EmitFn& emit) override {
    while (now >= next_send_) {
      ran::Packet p;
      p.size_bytes = packet_bytes_;
      p.tuple = tuple_;
      p.flow_id = id_;
      p.seq = seq_++;
      p.created = next_send_;
      emit(p);
      next_send_ += interval_;
    }
  }
  void on_ack(const ran::Packet& p, Nanos ack_time) override {
    delivered_bytes_ += p.size_bytes;
    last_ack_ = ack_time;
  }
  void on_drop(const ran::Packet&, Nanos) override { drops_++; }
  [[nodiscard]] std::uint64_t flow_id() const noexcept override { return id_; }
  [[nodiscard]] const e2sm::tc::FiveTuple& tuple() const noexcept override {
    return tuple_;
  }
  [[nodiscard]] std::uint64_t delivered_bytes() const noexcept {
    return delivered_bytes_;
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }

 private:
  std::uint64_t id_;
  e2sm::tc::FiveTuple tuple_;
  std::uint32_t packet_bytes_;
  Nanos interval_ = kMilli;
  Nanos next_send_ = 0;
  std::uint32_t seq_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t drops_ = 0;
  Nanos last_ack_ = 0;
};

}  // namespace flexric::flows
