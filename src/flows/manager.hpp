// TrafficManager: the simulated end-to-end path around one base station.
//
//   source ──dl core delay──▶ BS (SDAP/TC/RLC/MAC) ──radio──▶ UE
//      ▲                                                        │
//      └───────────────ul return delay (+ jitter)───────────────┘
//
// Sources are attached to a (rnti, drb); the manager delays their packets by
// the downlink one-way delay, injects them into the BS, and converts radio
// deliveries into acks/echoes after the uplink delay. Fig. 11c's unloaded
// VoIP RTT of 20–40 ms is reproduced by the configurable base delays plus a
// small uplink jitter (uplink scheduling grant cycle).
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "flows/flow.hpp"
#include "ran/base_station.hpp"

namespace flexric::flows {

class TrafficManager {
 public:
  struct Config {
    Nanos dl_owd = 8 * kMilli;      ///< core/internet one-way delay, downlink
    Nanos ul_owd = 10 * kMilli;     ///< return path incl. UL scheduling
    Nanos ul_jitter = 8 * kMilli;   ///< max extra UL delay (uniform)
    std::uint64_t seed = 7;
  };

  TrafficManager(ran::BaseStation& bs, Config cfg);

  /// Attach a source feeding (rnti, drb). The manager keeps a non-owning
  /// pointer; the caller controls source lifetime (typically the bench).
  void attach(FlowSource* src, std::uint16_t rnti, std::uint8_t drb = 1);
  void detach(std::uint64_t flow_id);

  /// Advance to `now` (call once per TTI, before BaseStation::tick).
  void tick(Nanos now);

  [[nodiscard]] std::uint64_t total_drops() const noexcept { return drops_; }

 private:
  struct Attachment {
    FlowSource* src;
    std::uint16_t rnti;
    std::uint8_t drb;
  };
  struct Pending {
    Nanos due;
    ran::Packet pkt;
    bool is_ack;  ///< false: inject downlink; true: deliver ack to source
    bool operator>(const Pending& o) const noexcept { return due > o.due; }
  };

  void on_radio_delivery(std::uint16_t rnti, const ran::Packet& p, Nanos now);
  void on_radio_drop(const ran::Packet& p, Nanos now);
  FlowSource* find_source(std::uint64_t flow_id);

  ran::BaseStation& bs_;
  Config cfg_;
  Rng rng_;
  std::map<std::uint64_t, Attachment> flows_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> line_;
  std::uint64_t drops_ = 0;
};

}  // namespace flexric::flows
