#include "flows/manager.hpp"

namespace flexric::flows {

TrafficManager::TrafficManager(ran::BaseStation& bs, Config cfg)
    : bs_(bs), cfg_(cfg), rng_(cfg.seed) {
  bs_.set_on_delivery(
      [this](std::uint16_t rnti, const ran::Packet& p, Nanos now) {
        on_radio_delivery(rnti, p, now);
      });
  bs_.set_on_drop([this](std::uint16_t, const ran::Packet& p) {
    on_radio_drop(p, bs_.now());
  });
}

void TrafficManager::attach(FlowSource* src, std::uint16_t rnti,
                            std::uint8_t drb) {
  flows_[src->flow_id()] = Attachment{src, rnti, drb};
}

void TrafficManager::detach(std::uint64_t flow_id) { flows_.erase(flow_id); }

FlowSource* TrafficManager::find_source(std::uint64_t flow_id) {
  auto it = flows_.find(flow_id);
  return it == flows_.end() ? nullptr : it->second.src;
}

void TrafficManager::tick(Nanos now) {
  // 1. Sources emit; their packets enter the downlink delay line.
  for (auto& [id, att] : flows_) {
    att.src->tick(now, [this, now](ran::Packet p) {
      line_.push(Pending{now + cfg_.dl_owd, std::move(p), false});
    });
  }
  // 2. Due events: inject into the BS / ack back to the source.
  while (!line_.empty() && line_.top().due <= now) {
    Pending ev = line_.top();
    line_.pop();
    auto it = flows_.find(ev.pkt.flow_id);
    if (it == flows_.end()) continue;
    if (ev.is_ack) {
      it->second.src->on_ack(ev.pkt, ev.due);
    } else {
      bool ok = bs_.deliver_downlink(it->second.rnti, it->second.drb, ev.pkt);
      if (!ok) on_radio_drop(ev.pkt, now);
    }
  }
}

void TrafficManager::on_radio_delivery(std::uint16_t, const ran::Packet& p,
                                       Nanos now) {
  Nanos jitter = cfg_.ul_jitter > 0
                     ? static_cast<Nanos>(rng_.bounded(
                           static_cast<std::uint64_t>(cfg_.ul_jitter)))
                     : 0;
  line_.push(Pending{now + cfg_.ul_owd + jitter, p, true});
}

void TrafficManager::on_radio_drop(const ran::Packet& p, Nanos now) {
  drops_++;
  if (FlowSource* src = find_source(p.flow_id)) src->on_drop(p, now);
}

}  // namespace flexric::flows
