// Protobuf-style varint TLV codec primitives (the FlexRAN baseline's wire
// format in this reproduction).
//
// Wire types follow protobuf: 0 = varint, 2 = length-delimited. Fields carry
// a (field_number << 3 | wire_type) tag. Unknown fields are skippable, which
// the FlexRAN baseline relies on for its loosely-versioned custom protocol.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/buffer.hpp"
#include "common/result.hpp"

namespace flexric {

enum class ProtoWireType : std::uint8_t { varint = 0, len = 2 };

/// Streaming protobuf-style encoder.
class ProtoWriter {
 public:
  void field_u64(std::uint32_t num, std::uint64_t v) {
    tag(num, ProtoWireType::varint);
    w_.uvarint(v);
  }
  void field_i64(std::uint32_t num, std::int64_t v) {
    tag(num, ProtoWireType::varint);
    w_.svarint(v);
  }
  void field_bool(std::uint32_t num, bool v) { field_u64(num, v ? 1 : 0); }
  void field_f64(std::uint32_t num, double v) {
    // doubles ride in a length-delimited field of 8 bytes (keeps only two
    // wire types in play)
    tag(num, ProtoWireType::len);
    w_.uvarint(8);
    w_.f64(v);
  }
  void field_bytes(std::uint32_t num, BytesView b) {
    tag(num, ProtoWireType::len);
    w_.lp_bytes(b);
  }
  void field_string(std::uint32_t num, std::string_view s) {
    tag(num, ProtoWireType::len);
    w_.lp_string(s);
  }
  /// Nested message: encode the child separately and embed its bytes.
  void field_message(std::uint32_t num, BytesView encoded_child) {
    field_bytes(num, encoded_child);
  }

  Buffer take() { return w_.take(); }
  [[nodiscard]] std::size_t size() const noexcept { return w_.size(); }

 private:
  void tag(std::uint32_t num, ProtoWireType wt) {
    w_.uvarint((static_cast<std::uint64_t>(num) << 3) |
               static_cast<std::uint64_t>(wt));
  }
  BufWriter w_;
};

/// Streaming protobuf-style decoder: iterate fields, dispatch on number.
// @view_of(the byte view passed to the constructor)
class ProtoReader {
 public:
  explicit ProtoReader(BytesView b) : r_(b) {}

  // @view_of(the ProtoReader's input buffer)
  struct Field {
    std::uint32_t number;
    ProtoWireType type;
    std::uint64_t varint;  // valid when type == varint
    BytesView bytes;       // valid when type == len
  };

  /// Next field, or Errc::not_found at clean end of input.
  Result<Field> next();
  [[nodiscard]] bool at_end() const noexcept { return r_.at_end(); }

  /// Helpers to interpret a len field.
  static Result<double> as_f64(const Field& f);
  static std::string as_string(const Field& f) {
    return std::string(reinterpret_cast<const char*>(f.bytes.data()),
                       f.bytes.size());
  }
  static std::int64_t as_i64(const Field& f) {
    std::uint64_t u = f.varint;
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

 private:
  BufReader r_;
};

}  // namespace flexric
