// FlatBuffers-style zero-copy codec primitives.
//
// Layout of a flat table:
//
//   [u32 fixed_size][fixed region][var region]
//
// The fixed region holds scalars at known offsets (declaration order) and,
// for each variable-size field, an (offset, length) pair relative to the
// start of the whole table. Readers wrap the wire bytes in a FlatView and
// access fields in place — there is no decode step, only an O(1) bounds
// validation, reproducing FlatBuffers' cost profile: the paper measures
// 30–40 B per-message overhead and ~4x lower controller CPU vs ASN.1
// (Figs. 7, 8b).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/buffer.hpp"
#include "common/result.hpp"

namespace flexric {

/// Builds a flat table. Scalars append to the fixed region; var fields
/// append an 8-byte (offset,len) slot to the fixed region and the payload to
/// the var region. finish() stitches both together behind a size prefix.
class FlatWriter {
 public:
  FlatWriter() : fixed_(128), var_(1024) {}

  void u8(std::uint8_t v) { fixed_.u8(v); }
  void u16(std::uint16_t v) { fixed_.u16(v); }
  void u32(std::uint32_t v) { fixed_.u32(v); }
  void u64(std::uint64_t v) { fixed_.u64(v); }
  void i64(std::int64_t v) { fixed_.i64(v); }
  void f64(double v) { fixed_.f64(v); }
  void boolean(bool v) { fixed_.u8(v ? 1 : 0); }

  /// Variable-length byte field: writes an (offset,len) slot now, payload at
  /// finish() time. Offsets are patched in finish().
  void var_bytes(BytesView b) {
    slots_.push_back({fixed_.size(), var_.size(), b.size()});
    fixed_.u32(0);  // offset placeholder
    fixed_.u32(static_cast<std::uint32_t>(b.size()));
    var_.bytes(b);
  }
  void var_string(std::string_view s) {
    var_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Zero-copy var field: write the content directly into the var region
  /// through the returned writer, then call var_end(). Saves the staging
  /// buffer + copy for composite fields (lists of structs).
  BufWriter& var_begin() {
    slots_.push_back({fixed_.size(), var_.size(), 0});
    fixed_.u32(0);  // offset placeholder
    fixed_.u32(0);  // length placeholder
    return var_;
  }
  void var_end() {
    Slot& s = slots_.back();
    s.len = var_.size() - s.var_off;
    fixed_.patch_u32(s.fixed_off + 4, static_cast<std::uint32_t>(s.len));
  }

  /// Assemble the final table.
  Buffer finish();

 private:
  struct Slot {
    std::size_t fixed_off;  // where the offset placeholder lives
    std::size_t var_off;    // payload position within var region
    std::size_t len;
  };
  BufWriter fixed_;
  BufWriter var_;
  std::vector<Slot> slots_;
};

/// Zero-copy reader over a flat table. Construction validates the size
/// prefix; field accessors are bounds-checked reads straight from the wire
/// buffer. Field offsets are maintained by the caller (sequential access via
/// the cursor API matches how the message codecs use it).
// @view_of(the encoded table buffer passed to FlatView::parse)
class FlatView {
 public:
  /// Validates the header. On success the view spans exactly one table.
  static Result<FlatView> parse(BytesView wire);

  Result<std::uint8_t> u8() { return scalar<std::uint8_t>(); }
  Result<std::uint16_t> u16() { return scalar<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return scalar<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return scalar<std::uint64_t>(); }
  Result<std::int64_t> i64() {
    auto r = scalar<std::uint64_t>();
    if (!r) return r.error();
    return static_cast<std::int64_t>(*r);
  }
  Result<double> f64() {
    auto r = scalar<std::uint64_t>();
    if (!r) return r.error();
    double d;
    std::uint64_t b = *r;
    std::memcpy(&d, &b, sizeof d);
    return d;
  }
  Result<bool> boolean() {
    auto r = scalar<std::uint8_t>();
    if (!r) return r.error();
    return *r != 0;
  }
  /// Resolve a var field slot: view into the wire bytes, no copy.
  Result<BytesView> var_bytes();
  Result<std::string_view> var_string() {
    auto b = var_bytes();
    if (!b) return b.error();
    return std::string_view(reinterpret_cast<const char*>(b->data()),
                            b->size());
  }

  /// Total size of the table on the wire including the size prefix.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return table_.size() + 4;
  }

 private:
  explicit FlatView(BytesView table, std::size_t fixed_size)
      : table_(table), fixed_size_(fixed_size) {}

  template <typename T>
  Result<T> scalar() {
    if (cursor_ + sizeof(T) > fixed_size_)
      return Error{Errc::truncated, "flat scalar past fixed region"};
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(table_[cursor_ + i]) << (8 * i)));
    cursor_ += sizeof(T);
    return v;
  }

  BytesView table_;         // fixed + var regions (excludes size prefix)
  std::size_t fixed_size_;  // boundary between fixed and var region
  std::size_t cursor_ = 0;  // next scalar/slot position in the fixed region
};

}  // namespace flexric
