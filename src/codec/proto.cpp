#include "codec/proto.hpp"

namespace flexric {

Result<ProtoReader::Field> ProtoReader::next() {
  if (r_.at_end()) return Error{Errc::not_found, "end of message"};
  auto tag = r_.uvarint();
  if (!tag) return tag.error();
  Field f{};
  f.number = static_cast<std::uint32_t>(*tag >> 3);
  auto wt = static_cast<std::uint8_t>(*tag & 0x7);
  if (wt == 0) {
    f.type = ProtoWireType::varint;
    auto v = r_.uvarint();
    if (!v) return v.error();
    f.varint = *v;
  } else if (wt == 2) {
    f.type = ProtoWireType::len;
    auto b = r_.lp_bytes();
    if (!b) return b.error();
    f.bytes = *b;
  } else {
    return Error{Errc::unsupported, "unknown wire type"};
  }
  return f;
}

Result<double> ProtoReader::as_f64(const Field& f) {
  if (f.type != ProtoWireType::len || f.bytes.size() != 8)
    return Error{Errc::malformed, "f64 field must be 8 bytes"};
  BufReader r(f.bytes);
  return r.f64();
}

}  // namespace flexric
