// ASN.1 aligned-PER-style codec primitives.
//
// Implements the encoding rules the E2AP/E2SM message codecs are written
// against: constrained whole numbers in minimal bit fields, aligned octet
// fields for ranges above 255, general length determinants (ITU-T X.691
// §11.9 short/long forms), optional-presence bitmaps, and octet strings.
// The full bit-level parse on decode reproduces ASN.1 PER's CPU profile,
// which drives Figs. 7 and 8b of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bit_io.hpp"
#include "common/buffer.hpp"
#include "common/result.hpp"

namespace flexric {

/// PER encoder. Methods mirror X.691 production rules.
class PerWriter {
 public:
  /// BOOLEAN — single bit.
  void boolean(bool b) { bw_.bit(b); }

  /// Constrained whole number in [lo, hi] (X.691 §11.5, aligned variant):
  /// range 1 encodes nothing; range <= 256 encodes ceil(log2(range)) bits;
  /// range <= 65536 aligns and encodes 2 octets; larger ranges encode a
  /// minimal-octet count followed by the aligned value.
  void constrained(std::uint64_t v, std::uint64_t lo, std::uint64_t hi);

  /// Semi-constrained whole number >= lo: length determinant + minimal
  /// octets (X.691 §11.7).
  void semi_constrained(std::uint64_t v, std::uint64_t lo);

  /// Unconstrained signed integer: length + two's-complement octets.
  void integer(std::int64_t v);

  /// ENUMERATED with n values (encoded as constrained [0, n-1]).
  void enumerated(std::uint32_t v, std::uint32_t n) {
    constrained(v, 0, n == 0 ? 0 : n - 1);
  }

  /// General length determinant (X.691 §11.9, values < 16384).
  void length(std::size_t n);

  /// OCTET STRING with length determinant (aligned). Bytes pass through the
  /// generic bit engine one by one — the cost profile of a general-purpose
  /// PER toolchain (asn1c has no aligned memcpy fast path), which is what
  /// makes ASN.1 CPU-bound for large payloads (§5.2/§5.3 of the paper).
  void octets(BytesView b);

  /// UTF8String-as-octets.
  void str(std::string_view s) {
    octets({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Presence bitmap for a SEQUENCE with optional fields.
  void presence(std::initializer_list<bool> flags) {
    for (bool f : flags) bw_.bit(f);
  }

  /// IEEE-754 double as 8 aligned octets (REAL simplification: E2 SMs carry
  /// measurements; this keeps decode exact for round-trip testing).
  void real(double v);

  Buffer take() { return bw_.take(); }
  [[nodiscard]] std::size_t bit_size() const noexcept { return bw_.bit_size(); }

 private:
  BitWriter bw_;
};

/// PER decoder; mirror of PerWriter.
// @view_of(the byte view passed to the constructor)
class PerReader {
 public:
  explicit PerReader(BytesView b) : br_(b) {}

  Result<bool> boolean() { return br_.bit(); }
  Result<std::uint64_t> constrained(std::uint64_t lo, std::uint64_t hi);
  Result<std::uint64_t> semi_constrained(std::uint64_t lo);
  Result<std::int64_t> integer();
  Result<std::uint32_t> enumerated(std::uint32_t n);
  Result<std::size_t> length();
  /// Full parse: bytes are read one by one through the bit engine into an
  /// owned buffer (see PerWriter::octets on why there is no view fast path).
  Result<Buffer> octets();
  Result<std::string> str();
  Result<std::vector<bool>> presence(std::size_t n);
  Result<double> real();

  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return br_.bits_remaining();
  }

 private:
  BitReader br_;
};

}  // namespace flexric
