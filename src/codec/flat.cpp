#include "codec/flat.hpp"

namespace flexric {

Buffer FlatWriter::finish() {
  // Patch var-field offsets now that the fixed region size is final.
  // Offsets are relative to the start of the table (after the size prefix).
  const std::size_t fixed_size = fixed_.size();
  for (const Slot& s : slots_) {
    fixed_.patch_u32(s.fixed_off,
                     static_cast<std::uint32_t>(fixed_size + s.var_off));
  }
  BufWriter out(4 + fixed_size + var_.size());
  out.u32(static_cast<std::uint32_t>(fixed_size));
  out.bytes(fixed_.view());
  out.bytes(var_.view());
  return out.take();
}

Result<FlatView> FlatView::parse(BytesView wire) {
  if (wire.size() < 4) return Error{Errc::truncated, "flat: no size prefix"};
  std::uint32_t fixed_size = 0;
  for (int i = 0; i < 4; ++i)
    fixed_size |= static_cast<std::uint32_t>(wire[static_cast<std::size_t>(i)])
                  << (8 * i);
  BytesView table = wire.subspan(4);
  if (fixed_size > table.size())
    return Error{Errc::malformed, "flat: fixed region exceeds table"};
  return FlatView(table, fixed_size);
}

Result<BytesView> FlatView::var_bytes() {
  auto off = scalar<std::uint32_t>();
  if (!off) return off.error();
  auto len = scalar<std::uint32_t>();
  if (!len) return len.error();
  if (static_cast<std::size_t>(*off) + *len > table_.size())
    return Error{Errc::malformed, "flat: var field out of bounds"};
  return table_.subspan(*off, *len);
}

}  // namespace flexric
