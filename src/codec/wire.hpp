// Wire-format selection for the E2 protocol abstraction.
//
// The paper's E2 abstraction decouples message *semantics* (the intermediate
// representation in src/e2ap, src/e2sm) from the *encoding*. Three encodings
// are provided, mirroring the evaluation:
//
//   per  — ASN.1 aligned-PER-style bit packing (O-RAN's mandated encoding):
//          most compact, full parse on decode, CPU-heavy.
//   flat — FlatBuffers-style zero-copy tables: ~30-40 B fixed overhead,
//          near-zero decode cost (reads directly from wire bytes).
//   proto— Protobuf-style varint TLV (the FlexRAN baseline's encoding):
//          between the two in both size and CPU.
#pragma once

#include <cstdint>
#include <string_view>

namespace flexric {

enum class WireFormat : std::uint8_t { per = 0, flat = 1, proto = 2 };

constexpr std::string_view wire_format_name(WireFormat f) {
  switch (f) {
    case WireFormat::per: return "ASN";     // paper's figures label it "ASN"
    case WireFormat::flat: return "FB";
    case WireFormat::proto: return "PROTO";
  }
  return "?";
}

}  // namespace flexric
