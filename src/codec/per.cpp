#include "codec/per.hpp"

#include <cstring>

namespace flexric {

namespace {
unsigned octets_for(std::uint64_t v) noexcept {
  unsigned n = 1;
  while (v > 0xFF) {
    ++n;
    v >>= 8;
  }
  return n;
}
}  // namespace

void PerWriter::constrained(std::uint64_t v, std::uint64_t lo,
                            std::uint64_t hi) {
  // lint: allow(wire-assert) encode-side precondition on locally built IR
  FLEXRIC_ASSERT(lo <= hi, "constrained: lo > hi");
  // lint: allow(wire-assert) encode-side precondition on locally built IR
  FLEXRIC_ASSERT(v >= lo && v <= hi, "constrained: value out of range");
  std::uint64_t range = hi - lo + 1;  // note: full 2^64 range unsupported
  std::uint64_t off = v - lo;
  if (range == 1) return;  // encodes nothing
  if (range <= 256) {
    bw_.bits(off, bits_for_range(range));
    return;
  }
  if (range <= 65536) {
    bw_.align();
    bw_.bits(off, 16);
    return;
  }
  // Large range: minimal octet count (as a small constrained int) + value.
  unsigned max_oct = octets_for(hi - lo);
  unsigned noct = octets_for(off);
  bw_.bits(noct - 1, bits_for_range(max_oct));
  bw_.align();
  bw_.bits(off, 8 * noct);
}

void PerWriter::semi_constrained(std::uint64_t v, std::uint64_t lo) {
  // lint: allow(wire-assert) encode-side precondition on locally built IR
  FLEXRIC_ASSERT(v >= lo, "semi_constrained: value below lower bound");
  std::uint64_t off = v - lo;
  unsigned noct = octets_for(off);
  length(noct);
  bw_.align();
  bw_.bits(off, 8 * noct);
}

void PerWriter::integer(std::int64_t v) {
  // Minimal two's-complement octets.
  unsigned noct = 1;
  while (noct < 8) {
    std::int64_t shifted = v >> (8 * noct - 1);
    if (shifted == 0 || shifted == -1) break;
    ++noct;
  }
  length(noct);
  bw_.align();
  bw_.bits(static_cast<std::uint64_t>(v), 8 * noct);
}

void PerWriter::length(std::size_t n) {
  // lint: allow(wire-assert) encode-side precondition on locally built IR
  FLEXRIC_ASSERT(n < 16384, "length determinant >= 16384 unsupported");
  bw_.align();
  if (n < 128) {
    bw_.bits(n, 8);
  } else {
    bw_.bits(0b10, 2);
    bw_.bits(n, 14);
  }
}

void PerWriter::octets(BytesView b) {
  length(b.size());
  bw_.align();
  for (std::uint8_t byte : b) bw_.bits(byte, 8);
}

void PerWriter::real(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  bw_.align();
  bw_.bits(bits, 64);
}

Result<std::uint64_t> PerReader::constrained(std::uint64_t lo,
                                             std::uint64_t hi) {
  if (lo > hi) return Error{Errc::out_of_range, "constrained: lo > hi"};
  std::uint64_t range = hi - lo + 1;
  if (range == 1) return lo;
  if (range <= 256) {
    auto r = br_.bits(bits_for_range(range));
    if (!r) return r.error();
    if (*r >= range) return Error{Errc::out_of_range, "constrained overflow"};
    return lo + *r;
  }
  if (range <= 65536) {
    br_.align();
    auto r = br_.bits(16);
    if (!r) return r.error();
    if (*r >= range) return Error{Errc::out_of_range, "constrained overflow"};
    return lo + *r;
  }
  unsigned max_oct = 1;
  {
    std::uint64_t m = hi - lo;
    max_oct = 1;
    while (m > 0xFF) {
      ++max_oct;
      m >>= 8;
    }
  }
  auto noct_r = br_.bits(bits_for_range(max_oct));
  if (!noct_r) return noct_r.error();
  unsigned noct = static_cast<unsigned>(*noct_r) + 1;
  if (noct > 8) return Error{Errc::malformed, "octet count too large"};
  br_.align();
  auto v = br_.bits(8 * noct);
  if (!v) return v.error();
  if (*v > hi - lo) return Error{Errc::out_of_range, "constrained overflow"};
  return lo + *v;
}

Result<std::uint64_t> PerReader::semi_constrained(std::uint64_t lo) {
  auto n = length();
  if (!n) return n.error();
  if (*n == 0 || *n > 8) return Error{Errc::malformed, "bad octet count"};
  br_.align();
  auto v = br_.bits(static_cast<unsigned>(8 * *n));
  if (!v) return v.error();
  return lo + *v;
}

Result<std::int64_t> PerReader::integer() {
  auto n = length();
  if (!n) return n.error();
  if (*n == 0 || *n > 8) return Error{Errc::malformed, "bad octet count"};
  br_.align();
  auto v = br_.bits(static_cast<unsigned>(8 * *n));
  if (!v) return v.error();
  // Sign-extend from 8*n bits.
  unsigned bits = static_cast<unsigned>(8 * *n);
  std::uint64_t u = *v;
  if (bits < 64 && (u & (std::uint64_t{1} << (bits - 1))))
    u |= ~((std::uint64_t{1} << bits) - 1);
  return static_cast<std::int64_t>(u);
}

Result<std::uint32_t> PerReader::enumerated(std::uint32_t n) {
  auto r = constrained(0, n == 0 ? 0 : n - 1);
  if (!r) return r.error();
  return static_cast<std::uint32_t>(*r);
}

Result<std::size_t> PerReader::length() {
  br_.align();
  auto first = br_.bits(8);
  if (!first) return first.error();
  if ((*first & 0x80) == 0) return static_cast<std::size_t>(*first);
  if ((*first & 0xC0) == 0x80) {
    auto second = br_.bits(8);
    if (!second) return second.error();
    return static_cast<std::size_t>(((*first & 0x3F) << 8) | *second);
  }
  return Error{Errc::unsupported, "fragmented length determinant"};
}

Result<Buffer> PerReader::octets() {
  auto n = length();
  if (!n) return n.error();
  br_.align();
  if (br_.bits_remaining() < *n * 8)
    return Error{Errc::truncated, "octet string past end"};
  Buffer out;
  out.reserve(*n);
  for (std::size_t i = 0; i < *n; ++i) {
    auto b = br_.bits(8);
    if (!b) return b.error();
    out.push_back(static_cast<std::uint8_t>(*b));
  }
  return out;
}

Result<std::string> PerReader::str() {
  auto b = octets();
  if (!b) return b.error();
  return std::string(reinterpret_cast<const char*>(b->data()), b->size());
}

Result<std::vector<bool>> PerReader::presence(std::size_t n) {
  std::vector<bool> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto b = br_.bit();
    if (!b) return b.error();
    out.push_back(*b);
  }
  return out;
}

Result<double> PerReader::real() {
  br_.align();
  auto r = br_.bits(64);
  if (!r) return r.error();
  double d;
  std::uint64_t bits = *r;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

}  // namespace flexric
