// Generic RAN function API (paper §4.1.1).
//
// A RAN function is controllable functionality within an E2 node. The agent
// library dispatches three E2AP callbacks to it — subscription request,
// subscription delete, and control — and gives it a handle to emit
// indications. Pre-defined RAN functions for the bundled SMs live in
// src/ran/functions.hpp; custom ones implement this interface directly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/buffer.hpp"
#include "common/result.hpp"
#include "e2ap/messages.hpp"

namespace flexric::agent {

/// Identifies one controller connection at the agent (§4.1.2: an agent can
/// serve multiple controllers). Id 0 is the first/primary controller.
using ControllerId = std::uint32_t;

/// Services the agent core offers to RAN functions.
class AgentServices {
 public:
  virtual ~AgentServices() = default;

  /// Send an indication to the controller `origin`. The RAN function fills
  /// request/ran_function_id/action_id per the owning subscription.
  virtual Status send_indication(ControllerId origin,
                                 const e2ap::Indication& ind) = 0;

  /// Start a periodic timer on the agent's reactor; returns a cancel token.
  virtual std::uint64_t start_timer(std::int64_t period_ns,
                                    std::function<void()> cb) = 0;
  virtual void cancel_timer(std::uint64_t token) = 0;

  /// UE-to-controller association (§4.1.2): true if `rnti` must be exposed
  /// to `origin`. The first controller sees every UE.
  [[nodiscard]] virtual bool ue_visible(std::uint16_t rnti,
                                        ControllerId origin) const = 0;
  /// Configure the association (used by the UE-ASSOC SM, Fig. 4).
  virtual void associate_ue(std::uint16_t rnti, ControllerId id) = 0;
  virtual void dissociate_ue(std::uint16_t rnti, ControllerId id) = 0;
};

/// Outcome of a subscription request handled by a RAN function.
struct SubscriptionOutcome {
  std::vector<std::uint8_t> admitted;
  std::vector<std::pair<std::uint8_t, e2ap::Cause>> not_admitted;
};

/// Interface every RAN function implements (the paper's generic RAN function
/// API: subscription / subscription delete / control callbacks).
class RanFunction {
 public:
  virtual ~RanFunction() = default;

  /// Static descriptor advertised in E2 Setup.
  [[nodiscard]] virtual const e2ap::RanFunctionItem& descriptor() const = 0;

  /// Called once when registered with an agent.
  virtual void bind(AgentServices& services) { services_ = &services; }

  /// E2AP callbacks. `origin` identifies the requesting controller so the
  /// function can enforce per-controller admission control (SLAs, §4.1.2).
  virtual Result<SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req, ControllerId origin) = 0;
  virtual Status on_subscription_delete(
      const e2ap::SubscriptionDeleteRequest& req, ControllerId origin) = 0;
  /// Returns the control outcome bytes for RICcontrolAcknowledge.
  virtual Result<Buffer> on_control(const e2ap::ControlRequest& req,
                                    ControllerId origin) = 0;

  /// Controller connection lifecycle (teardown of its subscriptions).
  virtual void on_controller_detached(ControllerId /*origin*/) {}

 protected:
  AgentServices* services_ = nullptr;
};

}  // namespace flexric::agent
