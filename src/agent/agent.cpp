#include "agent/agent.hpp"

#include <algorithm>

#include "common/affinity.hpp"
#include "common/log.hpp"

namespace flexric::agent {

const char* conn_state_name(ConnState s) noexcept {
  switch (s) {
    case ConnState::setup_sent: return "setup_sent";
    case ConnState::established: return "established";
    case ConnState::failed: return "failed";
    case ConnState::closed: return "closed";
    case ConnState::reconnecting: return "reconnecting";
  }
  return "?";
}

E2Agent::E2Agent(Reactor& reactor, Config cfg)
    : reactor_(reactor), cfg_(cfg), codec_(e2ap::codec_for(cfg.e2ap_format)) {}

E2Agent::~E2Agent() {
  for (auto& [id, conn] : conns_) {
    cancel_conn_timers(conn);
    if (conn.transport) {
      conn.transport->set_on_message(nullptr);
      conn.transport->set_on_close(nullptr);
    }
  }
}

Status E2Agent::register_function(std::shared_ptr<RanFunction> fn) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  const std::uint16_t id = fn->descriptor().id;
  if (find_function(id) != nullptr)
    return {Errc::already_exists, "RAN function id in use"};
  fn->bind(*this);
  functions_.push_back(std::move(fn));
  return Status::ok();
}

Status E2Agent::add_function_live(std::shared_ptr<RanFunction> fn) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  e2ap::RanFunctionItem item = fn->descriptor();
  FLEXRIC_TRY(register_function(std::move(fn)));
  e2ap::ServiceUpdate update;
  update.trans_id = next_trans_id_++;
  update.added.push_back(std::move(item));
  for (auto& [id, conn] : conns_)
    if (conn.state == ConnState::established)
      (void)send(id, e2ap::Msg{update});
  return Status::ok();
}

Status E2Agent::remove_function_live(std::uint16_t ran_function_id) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  auto it = std::find_if(functions_.begin(), functions_.end(),
                         [&](const auto& f) {
                           return f->descriptor().id == ran_function_id;
                         });
  if (it == functions_.end())
    return {Errc::not_found, "no such RAN function"};
  // Tear down whatever subscriptions the function holds.
  for (auto& [id, conn] : conns_) (*it)->on_controller_detached(id);
  functions_.erase(it);
  e2ap::ServiceUpdate update;
  update.trans_id = next_trans_id_++;
  update.removed.push_back(ran_function_id);
  for (auto& [id, conn] : conns_)
    if (conn.state == ConnState::established)
      (void)send(id, e2ap::Msg{update});
  return Status::ok();
}

RanFunction* E2Agent::find_function(std::uint16_t ran_function_id) {
  for (auto& f : functions_)
    if (f->descriptor().id == ran_function_id) return f.get();
  return nullptr;
}

Result<ControllerId> E2Agent::add_controller(
    std::shared_ptr<MsgTransport> transport) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  ControllerId id = next_conn_id_++;
  Conn& conn = conns_[id];
  conn.pending.configure(cfg_.overload.indication_queue,
                         cfg_.overload.shed_policy);
  conn.transport = std::move(transport);
  if (Status st = wire_transport(id); !st.is_ok()) {
    conns_.erase(id);
    return Error{st.code(), st.error().message};
  }
  return id;
}

Result<ControllerId> E2Agent::add_controller(TransportFactory factory,
                                             ResilienceConfig rc) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  if (!factory)
    return Error{Errc::malformed, "null transport factory"};
  ControllerId id = next_conn_id_++;
  Conn& conn = conns_[id];
  conn.pending.configure(cfg_.overload.indication_queue,
                         cfg_.overload.shed_policy);
  conn.factory = std::move(factory);
  conn.rc = rc;
  // Decorrelate jitter across connections sharing one config.
  conn.rng.reseed(rc.seed + 0x9E3779B97F4A7C15ull * (id + 1));

  auto t = conn.factory();
  if (t.is_ok()) {
    conn.transport = std::move(*t);
    if (wire_transport(id).is_ok()) return id;
    // Transport dead at birth: fall through to the retry path.
  } else {
    stats_.reconnect_failures++;
  }
  conn.transport.reset();
  conn.attempts = 1;
  if (!conn.rc.reconnect ||
      (conn.rc.max_attempts != 0 && conn.attempts >= conn.rc.max_attempts)) {
    conns_.erase(id);
    return Error{Errc::io, "initial dial failed and reconnect disabled"};
  }
  set_state(id, conn, ConnState::reconnecting);
  schedule_reconnect(id);
  return id;
}

Status E2Agent::wire_transport(ControllerId id) {
  Conn& conn = conns_[id];
  conn.transport->set_on_message(
      [this, id](StreamId, BytesView wire) { on_message(id, wire); });
  conn.transport->set_on_close([this, id]() { on_transport_lost(id); });
  conn.hb_outstanding = false;
  conn.hb_missed = 0;

  if (conn.ever_established) stats_.setup_replays++;
  set_state(id, conn, ConnState::setup_sent);

  e2ap::SetupRequest req;
  req.trans_id = next_trans_id_++;
  req.node = cfg_.node_id;
  for (const auto& f : functions_) req.ran_functions.push_back(f->descriptor());
  FLEXRIC_TRY(send(id, e2ap::Msg{std::move(req)}));

  if (conn.factory && conn.rc.setup_timeout > 0) {
    conn.setup_timer = reactor_.add_timer(
        conn.rc.setup_timeout,
        // lint: allow(posted-lambda-lifetime) setup_timer is cancelled by cancel_conn_timers() before this agent is destroyed
        [this, id] {
          auto it = conns_.find(id);
          if (it == conns_.end()) return;
          Conn& c = it->second;
          c.setup_timer = 0;
          if (c.state != ConnState::setup_sent) return;
          LOG_WARN("agent", "controller %u: no E2 Setup response in time", id);
          // Close the half-open link; on_close drives the reconnect.
          auto t = c.transport;
          if (t)
            t->close();
          else
            on_transport_lost(id);
        },
        /*periodic=*/false);
  }
  return Status::ok();
}

void E2Agent::on_transport_lost(ControllerId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  cancel_conn_timers(conn);
  for (auto& f : functions_) f->on_controller_detached(id);
  // Note: conn.transport is kept alive until replaced — this handler runs
  // from inside the transport's own close path.
  if (conn.factory && conn.rc.reconnect &&
      (conn.rc.max_attempts == 0 || conn.attempts < conn.rc.max_attempts)) {
    set_state(id, conn, ConnState::reconnecting);
    schedule_reconnect(id);
  } else {
    set_state(id, conn, ConnState::closed);
  }
}

void E2Agent::schedule_reconnect(ControllerId id) {
  Conn& conn = conns_[id];
  Nanos delay = next_backoff(conn.rc, conn.backoff_prev, conn.rng);
  conn.backoff_prev = delay;
  LOG_DEBUG("agent", "controller %u: retrying in %lld ms", id,
            static_cast<long long>(delay / kMilli));
  // lint: allow(posted-lambda-lifetime) retry_timer is cancelled by cancel_conn_timers() before this agent is destroyed
  conn.retry_timer = reactor_.add_timer(
      delay, [this, id] { try_reconnect(id); }, /*periodic=*/false);
}

void E2Agent::try_reconnect(ControllerId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  conn.retry_timer = 0;
  if (conn.state != ConnState::reconnecting) return;
  auto t = conn.factory();
  bool wired = false;
  if (t.is_ok()) {
    conn.transport = std::move(*t);
    stats_.reconnects++;
    wired = wire_transport(id).is_ok();
  }
  if (wired) return;
  stats_.reconnect_failures += t.is_ok() ? 0 : 1;
  conn.attempts++;
  if (conn.rc.max_attempts != 0 && conn.attempts >= conn.rc.max_attempts) {
    LOG_WARN("agent", "controller %u: giving up after %u attempts", id,
             conn.attempts);
    set_state(id, conn, ConnState::failed);
    return;
  }
  set_state(id, conn, ConnState::reconnecting);
  schedule_reconnect(id);
}

void E2Agent::start_heartbeat(ControllerId id) {
  Conn& conn = conns_[id];
  if (!conn.factory || conn.rc.heartbeat_period <= 0) return;
  if (conn.hb_timer != 0) reactor_.cancel_timer(conn.hb_timer);
  conn.hb_outstanding = false;
  conn.hb_missed = 0;
  // lint: allow(posted-lambda-lifetime) hb_timer is cancelled by cancel_conn_timers() before this agent is destroyed
  conn.hb_timer = reactor_.add_timer(
      conn.rc.heartbeat_period, [this, id] { heartbeat_tick(id); },
      /*periodic=*/true);
}

void E2Agent::heartbeat_tick(ControllerId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.state != ConnState::established) return;
  if (conn.hb_outstanding) {
    conn.hb_missed++;
    stats_.heartbeat_misses++;
    if (conn.hb_missed >= conn.rc.heartbeat_miss_threshold) {
      LOG_WARN("agent", "controller %u: %u heartbeats unanswered, reconnecting",
               id, conn.hb_missed);
      auto t = conn.transport;  // keep alive across the close callback
      if (t)
        t->close();
      else
        on_transport_lost(id);
      return;
    }
  }
  // Liveness probe: an empty RICserviceUpdate — protocol-conformant, acked
  // by the server without touching RanDb or iApps.
  e2ap::ServiceUpdate hb;
  hb.trans_id = next_trans_id_++;
  conn.hb_outstanding = true;
  stats_.heartbeats_tx++;
  (void)send(id, e2ap::Msg{hb});
  // Ride the heartbeat: drain whatever the link now accepts, then own up to
  // any sheds since the last report — drops are never silent.
  flush_pending(id);
  if (auto cit = conns_.find(id); cit != conns_.end())
    maybe_report_sheds(id, cit->second);
}

void E2Agent::cancel_conn_timers(Conn& conn) {
  if (conn.retry_timer != 0) reactor_.cancel_timer(conn.retry_timer);
  if (conn.hb_timer != 0) reactor_.cancel_timer(conn.hb_timer);
  if (conn.setup_timer != 0) reactor_.cancel_timer(conn.setup_timer);
  if (conn.flush_timer != 0) reactor_.cancel_timer(conn.flush_timer);
  conn.retry_timer = conn.hb_timer = conn.setup_timer = conn.flush_timer = 0;
  conn.hb_outstanding = false;
}

void E2Agent::set_state(ControllerId id, Conn& conn, ConnState s) {
  if (conn.state == s) return;
  conn.state = s;
  if (on_conn_event_) on_conn_event_(id, s);
}

void E2Agent::remove_controller(ControllerId id) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  cancel_conn_timers(it->second);
  for (auto& f : functions_) f->on_controller_detached(id);
  if (it->second.transport) {
    it->second.transport->set_on_close(nullptr);
    it->second.transport->close();
  }
  conns_.erase(it);
  for (auto& [rnti, set] : ue_assoc_) set.erase(id);
}

ConnState E2Agent::state(ControllerId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? ConnState::closed : it->second.state;
}

void E2Agent::associate_ue(std::uint16_t rnti, ControllerId id) {
  ue_assoc_[rnti].insert(id);
}

void E2Agent::dissociate_ue(std::uint16_t rnti, ControllerId id) {
  auto it = ue_assoc_.find(rnti);
  if (it == ue_assoc_.end()) return;
  it->second.erase(id);
  if (it->second.empty()) ue_assoc_.erase(it);
}

void E2Agent::remove_ue(std::uint16_t rnti) { ue_assoc_.erase(rnti); }

bool E2Agent::ue_visible(std::uint16_t rnti, ControllerId origin) const {
  // The agent associates every UE with the first controller (§4.1.2);
  // additional controllers only see explicitly associated UEs.
  if (origin == 0) return true;
  auto it = ue_assoc_.find(rnti);
  return it != ue_assoc_.end() && it->second.count(origin) > 0;
}

// @hotpath agent-side indication send, one call per frame
Status E2Agent::send_indication(ControllerId origin,
                                const e2ap::Indication& ind) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  auto it = conns_.find(origin);
  if (it == conns_.end()) return {Errc::io, "controller connection not open"};
  Conn& conn = it->second;
  if (cfg_.overload.indication_queue == 0)  // overload buffering disabled
    return send(origin, e2ap::Msg{ind});
  // Buffered indications must not be overtaken: only try the wire directly
  // when the buffer is empty.
  if (conn.pending.empty()) {
    Status st = send(origin, e2ap::Msg{ind});
    if (st.is_ok()) {
      stats_.indications_tx++;
      return st;
    }
    // Only TX-buffer pressure is absorbed here; other errors (closed conn,
    // encode failure) keep their pre-overload behavior.
    if (st.code() != Errc::capacity) return st;
  }
  // Fair shedding groups by subscription, so one chatty subscription cannot
  // starve the others on the same link.
  const std::uint64_t shed_before = conn.pending.stats().shed();
  const bool admitted = conn.pending.push(ind.request.instance, ind);
  stats_.indications_shed += conn.pending.stats().shed() - shed_before;
  if (admitted) stats_.indications_queued++;
  ensure_flush_timer(origin, conn);
  // The message is accounted for (buffered or counted shed + reported on the
  // next heartbeat): from the RAN function's view the send succeeded.
  return Status::ok();
}

void E2Agent::ensure_flush_timer(ControllerId id, Conn& conn) {
  if (conn.flush_timer != 0 || cfg_.overload.flush_period <= 0) return;
  conn.flush_timer = reactor_.add_timer(
      cfg_.overload.flush_period,
      // lint: allow(posted-lambda-lifetime) flush_timer is cancelled by cancel_conn_timers() before this agent is destroyed
      [this, id] { flush_pending(id); }, /*periodic=*/true);
}

void E2Agent::flush_pending(ControllerId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (const auto* front = conn.pending.front()) {
    Status st = send(id, e2ap::Msg{front->value});
    if (!st.is_ok()) {
      // capacity: the link is still backpressured, keep waiting. Any other
      // error (conn lost mid-flush): the buffer survives for the reconnect.
      return;
    }
    stats_.indications_tx++;
    stats_.indications_flushed++;
    (void)conn.pending.pop();
  }
  // Drained: stop ticking until backpressure next appears.
  if (conn.flush_timer != 0) {
    reactor_.cancel_timer(conn.flush_timer);
    conn.flush_timer = 0;
  }
}

void E2Agent::maybe_report_sheds(ControllerId id, Conn& conn) {
  if (!cfg_.overload.report_sheds) return;
  const std::uint64_t total = conn.pending.stats().shed();
  if (total <= conn.sheds_reported) return;
  const std::uint64_t delta = total - conn.sheds_reported;
  e2ap::NodeConfigUpdate report;
  report.trans_id = next_trans_id_++;
  BufWriter w;
  w.u64(delta);
  report.components.emplace_back(overload::kShedReportComponent, w.take());
  if (send(id, e2ap::Msg{std::move(report)}).is_ok()) {
    conn.sheds_reported = total;
    stats_.shed_reports_tx++;
  }
  // On failure the delta stays unreported and the next heartbeat retries.
}

std::uint64_t E2Agent::start_timer(std::int64_t period_ns,
                                   std::function<void()> cb) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  return reactor_.add_timer(period_ns, std::move(cb), /*periodic=*/true);
}

void E2Agent::cancel_timer(std::uint64_t token) {
  reactor_.cancel_timer(token);
}

Status E2Agent::send(ControllerId id, const e2ap::Msg& m) {
  auto it = conns_.find(id);
  if (it == conns_.end() || !it->second.transport ||
      !it->second.transport->is_open())
    return {Errc::io, "controller connection not open"};
  auto wire = codec_.encode(m);
  if (!wire) return wire.status();
  stats_.msgs_tx++;
  stats_.bytes_tx += wire->size();
  return it->second.transport->send(*wire);
}

void E2Agent::on_message(ControllerId id, BytesView wire) {
  stats_.msgs_rx++;
  stats_.bytes_rx += wire.size();
  if (auto cit = conns_.find(id); cit != conns_.end())
    cit->second.hb_missed = 0;  // any traffic proves the link is alive
  auto msg = codec_.decode(wire);
  if (!msg) {
    LOG_WARN("agent", "undecodable E2AP message from controller %u: %s", id,
             msg.error().to_string().c_str());
    // E2AP conformance: report the protocol error to the peer.
    e2ap::ErrorIndication err;
    err.cause = {e2ap::Cause::Group::protocol, 0 /*transfer-syntax-error*/};
    (void)send(id, e2ap::Msg{err});
    return;
  }
  std::visit(
      [this, id](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, e2ap::SetupResponse> ||
                      std::is_same_v<T, e2ap::SetupFailure> ||
                      std::is_same_v<T, e2ap::SubscriptionRequest> ||
                      std::is_same_v<T, e2ap::SubscriptionDeleteRequest> ||
                      std::is_same_v<T, e2ap::ControlRequest> ||
                      std::is_same_v<T, e2ap::ResetRequest> ||
                      std::is_same_v<T, e2ap::ServiceUpdateAck>) {
          handle(id, m);
        } else {
          LOG_DEBUG("agent", "ignoring %s at agent",
                    e2ap::msg_type_name(e2ap::msg_type(e2ap::Msg{m})));
        }
      },
      *msg);
}

void E2Agent::handle(ControllerId id, const e2ap::SetupResponse&) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.setup_timer != 0) {
    reactor_.cancel_timer(conn.setup_timer);
    conn.setup_timer = 0;
  }
  conn.attempts = 0;
  conn.backoff_prev = 0;
  conn.ever_established = true;
  set_state(id, conn, ConnState::established);
  start_heartbeat(id);
  // Indications buffered across the outage survive the reconnect.
  if (!conn.pending.empty()) ensure_flush_timer(id, conn);
}

void E2Agent::handle(ControllerId id, const e2ap::SetupFailure& m) {
  LOG_WARN("agent", "E2 setup failed at controller %u (cause %u/%u)", id,
           static_cast<unsigned>(m.cause.group), m.cause.value);
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  // An explicit rejection is not a link fault: retrying would loop forever.
  cancel_conn_timers(conn);
  set_state(id, conn, ConnState::failed);
}

void E2Agent::handle(ControllerId id, const e2ap::ServiceUpdateAck&) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second.hb_outstanding = false;
  it->second.hb_missed = 0;
}

void E2Agent::handle(ControllerId id, const e2ap::SubscriptionRequest& m) {
  RanFunction* fn = find_function(m.ran_function_id);
  if (fn == nullptr) {
    e2ap::SubscriptionFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 0 /*ran-function-id-invalid*/};
    (void)send(id, e2ap::Msg{fail});
    return;
  }
  auto outcome = fn->on_subscription(m, id);
  if (!outcome || outcome->admitted.empty()) {
    e2ap::SubscriptionFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 1 /*action-not-supported*/};
    (void)send(id, e2ap::Msg{fail});
    return;
  }
  e2ap::SubscriptionResponse resp;
  resp.request = m.request;
  resp.ran_function_id = m.ran_function_id;
  resp.admitted = outcome->admitted;
  resp.not_admitted = outcome->not_admitted;
  (void)send(id, e2ap::Msg{resp});
}

void E2Agent::handle(ControllerId id,
                     const e2ap::SubscriptionDeleteRequest& m) {
  RanFunction* fn = find_function(m.ran_function_id);
  if (fn == nullptr || !fn->on_subscription_delete(m, id).is_ok()) {
    e2ap::SubscriptionDeleteFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 2 /*request-id-unknown*/};
    (void)send(id, e2ap::Msg{fail});
    return;
  }
  e2ap::SubscriptionDeleteResponse resp;
  resp.request = m.request;
  resp.ran_function_id = m.ran_function_id;
  (void)send(id, e2ap::Msg{resp});
}

void E2Agent::handle(ControllerId id, const e2ap::ControlRequest& m) {
  RanFunction* fn = find_function(m.ran_function_id);
  if (fn == nullptr) {
    e2ap::ControlFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 0};
    (void)send(id, e2ap::Msg{fail});
    return;
  }
  auto outcome = fn->on_control(m, id);
  if (!outcome) {
    e2ap::ControlFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 3 /*control-failed*/};
    (void)send(id, e2ap::Msg{fail});
    return;
  }
  if (m.ack_requested) {
    e2ap::ControlAck ack;
    ack.request = m.request;
    ack.ran_function_id = m.ran_function_id;
    ack.outcome = std::move(*outcome);
    (void)send(id, e2ap::Msg{ack});
  }
}

void E2Agent::handle(ControllerId id, const e2ap::ResetRequest& m) {
  for (auto& f : functions_) f->on_controller_detached(id);
  e2ap::ResetResponse resp;
  resp.trans_id = m.trans_id;
  (void)send(id, e2ap::Msg{resp});
}

}  // namespace flexric::agent
