#include "agent/agent.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace flexric::agent {

E2Agent::E2Agent(Reactor& reactor, Config cfg)
    : reactor_(reactor), cfg_(cfg), codec_(e2ap::codec_for(cfg.e2ap_format)) {}

E2Agent::~E2Agent() {
  for (auto& [id, conn] : conns_)
    if (conn.transport) {
      conn.transport->set_on_message(nullptr);
      conn.transport->set_on_close(nullptr);
    }
}

Status E2Agent::register_function(std::shared_ptr<RanFunction> fn) {
  const std::uint16_t id = fn->descriptor().id;
  if (find_function(id) != nullptr)
    return {Errc::already_exists, "RAN function id in use"};
  fn->bind(*this);
  functions_.push_back(std::move(fn));
  return Status::ok();
}

Status E2Agent::add_function_live(std::shared_ptr<RanFunction> fn) {
  e2ap::RanFunctionItem item = fn->descriptor();
  FLEXRIC_TRY(register_function(std::move(fn)));
  e2ap::ServiceUpdate update;
  update.trans_id = next_trans_id_++;
  update.added.push_back(std::move(item));
  for (auto& [id, conn] : conns_)
    if (conn.state == ConnState::established)
      send(id, e2ap::Msg{update});
  return Status::ok();
}

Status E2Agent::remove_function_live(std::uint16_t ran_function_id) {
  auto it = std::find_if(functions_.begin(), functions_.end(),
                         [&](const auto& f) {
                           return f->descriptor().id == ran_function_id;
                         });
  if (it == functions_.end())
    return {Errc::not_found, "no such RAN function"};
  // Tear down whatever subscriptions the function holds.
  for (auto& [id, conn] : conns_) (*it)->on_controller_detached(id);
  functions_.erase(it);
  e2ap::ServiceUpdate update;
  update.trans_id = next_trans_id_++;
  update.removed.push_back(ran_function_id);
  for (auto& [id, conn] : conns_)
    if (conn.state == ConnState::established)
      send(id, e2ap::Msg{update});
  return Status::ok();
}

RanFunction* E2Agent::find_function(std::uint16_t ran_function_id) {
  for (auto& f : functions_)
    if (f->descriptor().id == ran_function_id) return f.get();
  return nullptr;
}

Result<ControllerId> E2Agent::add_controller(
    std::shared_ptr<MsgTransport> transport) {
  ControllerId id = next_conn_id_++;
  transport->set_on_message(
      [this, id](StreamId, BytesView wire) { on_message(id, wire); });
  transport->set_on_close([this, id]() {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    it->second.state = ConnState::closed;
    for (auto& f : functions_) f->on_controller_detached(id);
  });
  conns_[id] = Conn{std::move(transport), ConnState::setup_sent};

  e2ap::SetupRequest req;
  req.trans_id = next_trans_id_++;
  req.node = cfg_.node_id;
  for (const auto& f : functions_) req.ran_functions.push_back(f->descriptor());
  if (Status st = send(id, e2ap::Msg{std::move(req)}); !st.is_ok())
    return Error{st.code(), st.error().message};
  return id;
}

void E2Agent::remove_controller(ControllerId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  for (auto& f : functions_) f->on_controller_detached(id);
  if (it->second.transport) {
    it->second.transport->set_on_close(nullptr);
    it->second.transport->close();
  }
  conns_.erase(it);
  for (auto& [rnti, set] : ue_assoc_) set.erase(id);
}

ConnState E2Agent::state(ControllerId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? ConnState::closed : it->second.state;
}

void E2Agent::associate_ue(std::uint16_t rnti, ControllerId id) {
  ue_assoc_[rnti].insert(id);
}

void E2Agent::dissociate_ue(std::uint16_t rnti, ControllerId id) {
  auto it = ue_assoc_.find(rnti);
  if (it == ue_assoc_.end()) return;
  it->second.erase(id);
  if (it->second.empty()) ue_assoc_.erase(it);
}

void E2Agent::remove_ue(std::uint16_t rnti) { ue_assoc_.erase(rnti); }

bool E2Agent::ue_visible(std::uint16_t rnti, ControllerId origin) const {
  // The agent associates every UE with the first controller (§4.1.2);
  // additional controllers only see explicitly associated UEs.
  if (origin == 0) return true;
  auto it = ue_assoc_.find(rnti);
  return it != ue_assoc_.end() && it->second.count(origin) > 0;
}

Status E2Agent::send_indication(ControllerId origin,
                                const e2ap::Indication& ind) {
  return send(origin, e2ap::Msg{ind});
}

std::uint64_t E2Agent::start_timer(std::int64_t period_ns,
                                   std::function<void()> cb) {
  return reactor_.add_timer(period_ns, std::move(cb), /*periodic=*/true);
}

void E2Agent::cancel_timer(std::uint64_t token) {
  reactor_.cancel_timer(token);
}

Status E2Agent::send(ControllerId id, const e2ap::Msg& m) {
  auto it = conns_.find(id);
  if (it == conns_.end() || !it->second.transport ||
      !it->second.transport->is_open())
    return {Errc::io, "controller connection not open"};
  auto wire = codec_.encode(m);
  if (!wire) return wire.status();
  stats_.msgs_tx++;
  stats_.bytes_tx += wire->size();
  return it->second.transport->send(*wire);
}

void E2Agent::on_message(ControllerId id, BytesView wire) {
  stats_.msgs_rx++;
  stats_.bytes_rx += wire.size();
  auto msg = codec_.decode(wire);
  if (!msg) {
    LOG_WARN("agent", "undecodable E2AP message from controller %u: %s", id,
             msg.error().to_string().c_str());
    // E2AP conformance: report the protocol error to the peer.
    e2ap::ErrorIndication err;
    err.cause = {e2ap::Cause::Group::protocol, 0 /*transfer-syntax-error*/};
    send(id, e2ap::Msg{err});
    return;
  }
  std::visit(
      [this, id](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, e2ap::SetupResponse> ||
                      std::is_same_v<T, e2ap::SetupFailure> ||
                      std::is_same_v<T, e2ap::SubscriptionRequest> ||
                      std::is_same_v<T, e2ap::SubscriptionDeleteRequest> ||
                      std::is_same_v<T, e2ap::ControlRequest> ||
                      std::is_same_v<T, e2ap::ResetRequest>) {
          handle(id, m);
        } else {
          LOG_DEBUG("agent", "ignoring %s at agent",
                    e2ap::msg_type_name(e2ap::msg_type(e2ap::Msg{m})));
        }
      },
      *msg);
}

void E2Agent::handle(ControllerId id, const e2ap::SetupResponse&) {
  auto it = conns_.find(id);
  if (it != conns_.end()) it->second.state = ConnState::established;
}

void E2Agent::handle(ControllerId id, const e2ap::SetupFailure& m) {
  LOG_WARN("agent", "E2 setup failed at controller %u (cause %u/%u)", id,
           static_cast<unsigned>(m.cause.group), m.cause.value);
  auto it = conns_.find(id);
  if (it != conns_.end()) it->second.state = ConnState::failed;
}

void E2Agent::handle(ControllerId id, const e2ap::SubscriptionRequest& m) {
  RanFunction* fn = find_function(m.ran_function_id);
  if (fn == nullptr) {
    e2ap::SubscriptionFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 0 /*ran-function-id-invalid*/};
    send(id, e2ap::Msg{fail});
    return;
  }
  auto outcome = fn->on_subscription(m, id);
  if (!outcome || outcome->admitted.empty()) {
    e2ap::SubscriptionFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 1 /*action-not-supported*/};
    send(id, e2ap::Msg{fail});
    return;
  }
  e2ap::SubscriptionResponse resp;
  resp.request = m.request;
  resp.ran_function_id = m.ran_function_id;
  resp.admitted = outcome->admitted;
  resp.not_admitted = outcome->not_admitted;
  send(id, e2ap::Msg{resp});
}

void E2Agent::handle(ControllerId id,
                     const e2ap::SubscriptionDeleteRequest& m) {
  RanFunction* fn = find_function(m.ran_function_id);
  if (fn == nullptr || !fn->on_subscription_delete(m, id).is_ok()) {
    e2ap::SubscriptionDeleteFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 2 /*request-id-unknown*/};
    send(id, e2ap::Msg{fail});
    return;
  }
  e2ap::SubscriptionDeleteResponse resp;
  resp.request = m.request;
  resp.ran_function_id = m.ran_function_id;
  send(id, e2ap::Msg{resp});
}

void E2Agent::handle(ControllerId id, const e2ap::ControlRequest& m) {
  RanFunction* fn = find_function(m.ran_function_id);
  if (fn == nullptr) {
    e2ap::ControlFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 0};
    send(id, e2ap::Msg{fail});
    return;
  }
  auto outcome = fn->on_control(m, id);
  if (!outcome) {
    e2ap::ControlFailure fail;
    fail.request = m.request;
    fail.ran_function_id = m.ran_function_id;
    fail.cause = {e2ap::Cause::Group::ric, 3 /*control-failed*/};
    send(id, e2ap::Msg{fail});
    return;
  }
  if (m.ack_requested) {
    e2ap::ControlAck ack;
    ack.request = m.request;
    ack.ran_function_id = m.ran_function_id;
    ack.outcome = std::move(*outcome);
    send(id, e2ap::Msg{ack});
  }
}

void E2Agent::handle(ControllerId id, const e2ap::ResetRequest& m) {
  for (auto& f : functions_) f->on_controller_detached(id);
  e2ap::ResetResponse resp;
  resp.trans_id = m.trans_id;
  send(id, e2ap::Msg{resp});
}

}  // namespace flexric::agent
