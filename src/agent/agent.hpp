// FlexRIC agent library (paper §4.1).
//
// Embeds into a base station (or CU/DU part): manages connections to one or
// more controllers, performs the E2 Setup handshake, dispatches functional
// procedures to registered RAN functions, and maintains the
// UE-to-controller association for multi-controller deployments.
//
// The agent is passive with respect to SM semantics: all SM logic lives in
// RAN functions (src/ran/functions.hpp provides the bundled ones).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "agent/ran_function.hpp"
#include "codec/wire.hpp"
#include "e2ap/codec.hpp"
#include "transport/transport.hpp"

namespace flexric::agent {

/// Per-connection E2 setup state.
enum class ConnState { setup_sent, established, failed, closed };

class E2Agent final : public AgentServices {
 public:
  struct Config {
    e2ap::GlobalNodeId node_id;
    WireFormat e2ap_format = WireFormat::per;  ///< O-RAN default: ASN.1
  };

  E2Agent(Reactor& reactor, Config cfg);
  ~E2Agent() override;
  E2Agent(const E2Agent&) = delete;
  E2Agent& operator=(const E2Agent&) = delete;

  /// Register a RAN function before connecting (advertised in E2 Setup).
  Status register_function(std::shared_ptr<RanFunction> fn);

  /// Register a RAN function on a live agent: advertised to every connected
  /// controller via RICserviceUpdate (forward compatibility — a node can
  /// grow capabilities without reconnecting).
  Status add_function_live(std::shared_ptr<RanFunction> fn);
  /// Withdraw a RAN function; controllers are informed via RICserviceUpdate
  /// and its subscriptions are torn down locally.
  Status remove_function_live(std::uint16_t ran_function_id);

  /// Connect to an additional controller over `transport`; sends
  /// E2SetupRequest immediately. Controller 0 is the primary one.
  Result<ControllerId> add_controller(std::shared_ptr<MsgTransport> transport);
  /// Tear down one controller connection.
  void remove_controller(ControllerId id);

  [[nodiscard]] ConnState state(ControllerId id) const;
  [[nodiscard]] std::size_t num_controllers() const noexcept {
    return conns_.size();
  }

  // -- UE-to-controller association (§4.1.2) --
  /// Expose `rnti` to controller `id`. No-op for the primary controller,
  /// which sees all UEs by default.
  void associate_ue(std::uint16_t rnti, ControllerId id) override;
  void dissociate_ue(std::uint16_t rnti, ControllerId id) override;
  /// Remove a UE entirely (detach).
  void remove_ue(std::uint16_t rnti);

  // -- AgentServices --
  Status send_indication(ControllerId origin,
                         const e2ap::Indication& ind) override;
  std::uint64_t start_timer(std::int64_t period_ns,
                            std::function<void()> cb) override;
  void cancel_timer(std::uint64_t token) override;
  [[nodiscard]] bool ue_visible(std::uint16_t rnti,
                                ControllerId origin) const override;

  [[nodiscard]] Reactor& reactor() noexcept { return reactor_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Counters for the evaluation harness.
  struct Stats {
    std::uint64_t msgs_rx = 0;
    std::uint64_t msgs_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t bytes_tx = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Conn {
    std::shared_ptr<MsgTransport> transport;
    ConnState state = ConnState::setup_sent;
  };

  void on_message(ControllerId id, BytesView wire);
  void handle(ControllerId id, const e2ap::SetupResponse& m);
  void handle(ControllerId id, const e2ap::SetupFailure& m);
  void handle(ControllerId id, const e2ap::SubscriptionRequest& m);
  void handle(ControllerId id, const e2ap::SubscriptionDeleteRequest& m);
  void handle(ControllerId id, const e2ap::ControlRequest& m);
  void handle(ControllerId id, const e2ap::ResetRequest& m);
  Status send(ControllerId id, const e2ap::Msg& m);
  RanFunction* find_function(std::uint16_t ran_function_id);

  Reactor& reactor_;
  Config cfg_;
  const e2ap::Codec& codec_;
  std::map<ControllerId, Conn> conns_;
  ControllerId next_conn_id_ = 0;
  std::vector<std::shared_ptr<RanFunction>> functions_;
  std::map<std::uint16_t, std::set<ControllerId>> ue_assoc_;
  std::uint8_t next_trans_id_ = 0;
  Stats stats_;
};

}  // namespace flexric::agent
