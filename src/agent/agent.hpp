// FlexRIC agent library (paper §4.1).
//
// Embeds into a base station (or CU/DU part): manages connections to one or
// more controllers, performs the E2 Setup handshake, dispatches functional
// procedures to registered RAN functions, and maintains the
// UE-to-controller association for multi-controller deployments.
//
// The agent is passive with respect to SM semantics: all SM logic lives in
// RAN functions (src/ran/functions.hpp provides the bundled ones).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "agent/ran_function.hpp"
#include "codec/wire.hpp"
#include "common/overload.hpp"
#include "common/rng.hpp"
#include "e2ap/codec.hpp"
#include "transport/resilience.hpp"
#include "transport/transport.hpp"

namespace flexric::agent {

/// Agent-side overload protection (DESIGN.md §11): when a controller's TX
/// buffer hits its capacity cap (see TcpTransport::set_max_tx_buffer),
/// send_indication() queues into a bounded per-controller buffer instead of
/// surfacing the error, flushes as the link drains, sheds per `shed_policy`
/// when the buffer itself fills, and reports shed counts alongside the next
/// heartbeat — drops are visible at the controller, never silent.
struct OverloadConfig {
  /// Per-controller indication buffer (IR messages). 0 restores the
  /// pre-overload behavior: capacity errors return to the caller directly.
  std::size_t indication_queue = 256;
  overload::ShedPolicy shed_policy = overload::ShedPolicy::drop_oldest;
  /// Retry cadence while indications are buffered (0 disables the timer;
  /// flushes then only happen on heartbeat ticks).
  Nanos flush_period = 10 * kMilli;
  /// Piggyback shed-count reports (NodeConfigUpdate) on heartbeat ticks.
  bool report_sheds = true;
};

/// Per-connection E2 setup state. `reconnecting` is entered when a resilient
/// connection (one added with a TransportFactory) loses its transport: the
/// agent re-dials with exponential backoff + decorrelated jitter and replays
/// the E2 Setup handshake on success.
enum class ConnState { setup_sent, established, failed, closed, reconnecting };

const char* conn_state_name(ConnState s) noexcept;

/// Produces a fresh transport towards one controller. Called on the reactor
/// thread for the initial dial and for every reconnect attempt.
using TransportFactory =
    std::function<Result<std::shared_ptr<MsgTransport>>()>;

// @affine(reactor)
class E2Agent final : public AgentServices {
 public:
  struct Config {
    e2ap::GlobalNodeId node_id;
    WireFormat e2ap_format = WireFormat::per;  ///< O-RAN default: ASN.1
    /// Bounded indication buffering + shed reporting (see OverloadConfig).
    OverloadConfig overload;
  };

  E2Agent(Reactor& reactor, Config cfg);
  ~E2Agent() override;
  E2Agent(const E2Agent&) = delete;
  E2Agent& operator=(const E2Agent&) = delete;

  /// Register a RAN function before connecting (advertised in E2 Setup).
  Status register_function(std::shared_ptr<RanFunction> fn);

  /// Register a RAN function on a live agent: advertised to every connected
  /// controller via RICserviceUpdate (forward compatibility — a node can
  /// grow capabilities without reconnecting).
  Status add_function_live(std::shared_ptr<RanFunction> fn);
  /// Withdraw a RAN function; controllers are informed via RICserviceUpdate
  /// and its subscriptions are torn down locally.
  Status remove_function_live(std::uint16_t ran_function_id);

  /// Connect to an additional controller over `transport`; sends
  /// E2SetupRequest immediately. Controller 0 is the primary one. No
  /// reconnect: when the transport dies the connection is `closed` for good.
  Result<ControllerId> add_controller(std::shared_ptr<MsgTransport> transport);

  /// Resilient variant: the agent owns the dial. The factory is invoked now
  /// and after every connection loss (backoff per `rc`); the E2 Setup
  /// handshake is replayed on each new transport, and a heartbeat (empty
  /// RICserviceUpdate on stream 0) detects half-open links. If the initial
  /// dial fails the connection starts in `reconnecting` and keeps trying.
  Result<ControllerId> add_controller(TransportFactory factory,
                                      ResilienceConfig rc = {});

  /// Tear down one controller connection (cancels any reconnect/heartbeat).
  void remove_controller(ControllerId id);

  [[nodiscard]] ConnState state(ControllerId id) const;
  [[nodiscard]] std::size_t num_controllers() const noexcept {
    return conns_.size();
  }

  /// Observe connection state transitions (established, reconnecting, ...).
  /// Runs on the reactor thread.
  using ConnEventHandler = std::function<void(ControllerId, ConnState)>;
  void set_on_conn_event(ConnEventHandler h) { on_conn_event_ = std::move(h); }

  // -- UE-to-controller association (§4.1.2) --
  /// Expose `rnti` to controller `id`. No-op for the primary controller,
  /// which sees all UEs by default.
  void associate_ue(std::uint16_t rnti, ControllerId id) override;
  void dissociate_ue(std::uint16_t rnti, ControllerId id) override;
  /// Remove a UE entirely (detach).
  void remove_ue(std::uint16_t rnti);

  // -- AgentServices --
  Status send_indication(ControllerId origin,
                         const e2ap::Indication& ind) override;
  std::uint64_t start_timer(std::int64_t period_ns,
                            std::function<void()> cb) override;
  void cancel_timer(std::uint64_t token) override;
  [[nodiscard]] bool ue_visible(std::uint16_t rnti,
                                ControllerId origin) const override;

  [[nodiscard]] Reactor& reactor() noexcept { return reactor_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Counters for the evaluation harness.
  struct Stats {
    std::uint64_t msgs_rx = 0;
    std::uint64_t msgs_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t reconnects = 0;       ///< successful re-dials
    std::uint64_t reconnect_failures = 0;  ///< factory attempts that failed
    std::uint64_t heartbeats_tx = 0;
    std::uint64_t heartbeat_misses = 0;
    std::uint64_t setup_replays = 0;    ///< E2 Setup resent after reconnect
    // -- overload accounting (DESIGN.md §11). Exact-reconciliation
    //    invariant: indications emitted by RAN functions
    //      == indications_tx + indications_shed + <still buffered>
    std::uint64_t indications_tx = 0;       ///< put on the wire (direct+flush)
    std::uint64_t indications_queued = 0;   ///< buffered under backpressure
    std::uint64_t indications_flushed = 0;  ///< drained from buffer to wire
    std::uint64_t indications_shed = 0;     ///< dropped by the bounded buffer
    std::uint64_t shed_reports_tx = 0;      ///< NodeConfigUpdate reports sent
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Per-controller indication buffer accounting (nullptr: no such conn).
  [[nodiscard]] const overload::BoundedQueue<e2ap::Indication>*
  pending_indications(ControllerId id) const {
    auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : &it->second.pending;
  }

 private:
  struct Conn {
    std::shared_ptr<MsgTransport> transport;
    ConnState state = ConnState::setup_sent;
    // -- resilience (unused for bare-transport connections) --
    TransportFactory factory;
    ResilienceConfig rc;
    Rng rng{1};
    Nanos backoff_prev = 0;          ///< last retry delay (jitter input)
    std::uint32_t attempts = 0;      ///< consecutive failed dial attempts
    Reactor::TimerId retry_timer = 0;
    Reactor::TimerId hb_timer = 0;
    Reactor::TimerId setup_timer = 0;
    bool hb_outstanding = false;     ///< probe sent, ack not yet seen
    std::uint32_t hb_missed = 0;
    bool ever_established = false;   ///< distinguishes replay from first setup
    // -- overload: bounded indication buffer (DESIGN.md §11) --
    overload::BoundedQueue<e2ap::Indication> pending;
    Reactor::TimerId flush_timer = 0;
    std::uint64_t sheds_reported = 0;  ///< shed count already told to the peer
  };

  void on_message(ControllerId id, BytesView wire);
  void handle(ControllerId id, const e2ap::SetupResponse& m);
  void handle(ControllerId id, const e2ap::SetupFailure& m);
  void handle(ControllerId id, const e2ap::SubscriptionRequest& m);
  void handle(ControllerId id, const e2ap::SubscriptionDeleteRequest& m);
  void handle(ControllerId id, const e2ap::ControlRequest& m);
  void handle(ControllerId id, const e2ap::ResetRequest& m);
  void handle(ControllerId id, const e2ap::ServiceUpdateAck& m);
  Status send(ControllerId id, const e2ap::Msg& m);
  RanFunction* find_function(std::uint16_t ran_function_id);

  // -- resilience machinery (all on the reactor thread) --
  /// Bind handlers to conn.transport and send the E2 Setup request.
  Status wire_transport(ControllerId id);
  /// Transport died: detach functions and either schedule a reconnect or go
  /// to `closed`.
  void on_transport_lost(ControllerId id);
  void schedule_reconnect(ControllerId id);
  void try_reconnect(ControllerId id);
  void start_heartbeat(ControllerId id);
  void heartbeat_tick(ControllerId id);
  // -- overload machinery (all on the reactor thread) --
  void ensure_flush_timer(ControllerId id, Conn& conn);
  /// Drain buffered indications until the transport pushes back again.
  void flush_pending(ControllerId id);
  /// Tell the controller about sheds it has not heard of yet.
  void maybe_report_sheds(ControllerId id, Conn& conn);
  void cancel_conn_timers(Conn& conn);
  void set_state(ControllerId id, Conn& conn, ConnState s);

  Reactor& reactor_;
  Config cfg_;
  const e2ap::Codec& codec_;
  std::map<ControllerId, Conn> conns_;
  ControllerId next_conn_id_ = 0;
  std::vector<std::shared_ptr<RanFunction>> functions_;
  std::map<std::uint16_t, std::set<ControllerId>> ue_assoc_;
  std::uint8_t next_trans_id_ = 0;
  ConnEventHandler on_conn_event_;
  Stats stats_;
};

}  // namespace flexric::agent
