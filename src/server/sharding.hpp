// Shard partitioner (DESIGN.md §13).
//
// Agents are assigned to shards by hashing their GlobalNodeId — the full
// (plmn, nb_id, type) triple. Properties the tests lock in:
//
//  * Stable: the shard is a pure function of the node id, so a reconnecting
//    agent lands on the same shard no matter how often it churns — its
//    retained state (RanDb entry, subscriptions) never has to migrate.
//  * Balanced: FNV-1a over the triple spreads 1k random node ids within 2x
//    of ideal across any shard count (property-tested).
//  * Deliberately disaggregation-blind: the CU and DU of one base station
//    share (plmn, nb_id) but differ in type, so they MAY land on different
//    shards. That keeps per-shard load independent of deployment shape and
//    makes the cross-shard RAN-DB merge a first-class, tested path rather
//    than an accident.
#pragma once

#include <cstdint>

#include "e2ap/messages.hpp"
#include "server/ran_db.hpp"

namespace flexric::server {

/// FNV-1a 64 over the full GlobalNodeId.
[[nodiscard]] inline std::uint64_t shard_hash(
    const e2ap::GlobalNodeId& node) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  mix(node.plmn, 4);
  mix(node.nb_id, 4);
  mix(static_cast<std::uint64_t>(node.type), 1);
  return h;
}

[[nodiscard]] inline std::uint32_t shard_of(const e2ap::GlobalNodeId& node,
                                            std::uint32_t num_shards) noexcept {
  return num_shards <= 1
             ? 0
             : static_cast<std::uint32_t>(shard_hash(node) % num_shards);
}

/// Globally unique agent ids for merged (home-side) views: per-shard
/// AgentIds restart at 1 on every shard, so cross-shard aggregation tags
/// them with the shard index in the top byte.
[[nodiscard]] inline AgentId global_agent_id(std::uint32_t shard,
                                             AgentId local) noexcept {
  return (shard << 24) | (local & 0x00FFFFFFu);
}
[[nodiscard]] inline std::uint32_t shard_of_global(AgentId global) noexcept {
  return global >> 24;
}
[[nodiscard]] inline AgentId local_agent_id(AgentId global) noexcept {
  return global & 0x00FFFFFFu;
}

}  // namespace flexric::server
