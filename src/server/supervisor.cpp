#include "server/supervisor.hpp"

#include "server/sharded_server.hpp"
#include "transport/shard_pool.hpp"

namespace flexric::server {

const char* shard_health_name(ShardHealth h) noexcept {
  switch (h) {
    case ShardHealth::healthy: return "healthy";
    case ShardHealth::degraded: return "degraded";
    case ShardHealth::quarantined: return "quarantined";
    case ShardHealth::recovering: return "recovering";
  }
  return "unknown";
}

ShardSupervisor::ShardSupervisor(ShardPool& pool, ShardedE2Server& server,
                                 SupervisionConfig cfg)
    : pool_(pool), server_(server), cfg_(cfg), states_(pool.size()) {}

void ShardSupervisor::transition(std::uint32_t shard, ShardHealth to) {
  ShardState& st = states_[shard];
  const ShardHealth from = st.health;
  if (from == to) return;
  st.health = to;
  if (on_transition_) on_transition_(shard, from, to);
}

void ShardSupervisor::quarantine(std::uint32_t shard, Nanos now) {
  ShardState& st = states_[shard];
  st.quarantined_at = now;
  st.fresh_polls = 0;
  stats_.quarantines++;
  // Containment before anything else: no new agents, no new queries, and
  // every in-flight cross-shard query fails fast with a transport cause.
  server_.contain_shard(shard);
  transition(shard, ShardHealth::quarantined);
  const bool budget_left =
      cfg_.max_restarts == 0 || st.restarts < cfg_.max_restarts;
  if (cfg_.auto_restart && budget_left) restart(shard);
}

void ShardSupervisor::restart(std::uint32_t shard) {
  ShardState& st = states_[shard];
  if (st.health != ShardHealth::quarantined) return;
  server_.rebuild_shard(shard);
  st.restarts++;
  stats_.restarts++;
  // The replacement starts a fresh heartbeat history: baseline its age at
  // the rebuild instant so it gets a full quarantine_after of grace.
  st.last_turns = 0;
  st.last_beat = last_now_;
  st.fresh_polls = 0;
  transition(shard, ShardHealth::recovering);
}

void ShardSupervisor::poll(Nanos now) {
  if (!cfg_.enabled) return;
  last_now_ = now;
  stats_.polls++;
  for (std::uint32_t i = 0; i < states_.size(); ++i) {
    ShardState& st = states_[i];
    const ShardHealthBoard::Beat b = pool_.health().read(i);
    if (b.turns != st.last_turns) {
      st.last_turns = b.turns;
      st.last_beat = b.progress_ns;
    } else if (st.last_turns == 0 && st.last_beat == 0) {
      // Never beaten and never observed: grace starts at first sight, not
      // at the epoch, or a freshly built pool would be condemned at once.
      st.last_beat = now;
    }
    const Nanos age = now - st.last_beat;
    st.last_age = age;
    const bool fresh = age <= cfg_.degraded_after;
    switch (st.health) {
      case ShardHealth::healthy:
        if (age > cfg_.quarantine_after) {
          quarantine(i, now);
        } else if (age > cfg_.degraded_after) {
          st.fresh_polls = 0;
          stats_.degradations++;
          transition(i, ShardHealth::degraded);
        }
        break;
      case ShardHealth::degraded:
        if (age > cfg_.quarantine_after) {
          quarantine(i, now);
        } else if (fresh) {
          if (++st.fresh_polls >= cfg_.recover_hysteresis)
            transition(i, ShardHealth::healthy);
        } else {
          st.fresh_polls = 0;
        }
        break;
      case ShardHealth::quarantined:
        // Contained and out of restart budget (or auto_restart off):
        // nothing to watch until restart() is called.
        break;
      case ShardHealth::recovering:
        if (age > cfg_.quarantine_after) {
          // The replacement wedged too — quarantine again; the restart
          // budget decides whether another rebuild is attempted.
          quarantine(i, now);
        } else if (fresh) {
          if (++st.fresh_polls >= cfg_.recover_hysteresis) {
            stats_.recoveries++;
            stats_.mttr_last = now - st.quarantined_at;
            transition(i, ShardHealth::healthy);
          }
        } else {
          st.fresh_polls = 0;
        }
        break;
    }
  }
}

}  // namespace flexric::server
