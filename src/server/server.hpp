// FlexRIC server library (paper §4.2.2).
//
// Multiplexes agent connections and dispatches E2AP messages to iApps:
//
//   * RAN management — handles connection events (E2 Setup), fills the RAN
//     DB, merges disaggregated agents, and notifies subscribed iApps.
//   * Subscription management — tracks subscriptions per (agent, request id)
//     and delivers subscription outcomes and indications to the requesting
//     iApp via callbacks.
//
// The library implements no SM itself and never requests information on its
// own — iApps trigger all SM communication (zero-overhead principle).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "codec/wire.hpp"
#include "common/overload.hpp"
#include "e2ap/codec.hpp"
#include "server/ran_db.hpp"
#include "transport/resilience.hpp"
#include "transport/transport.hpp"

namespace flexric::server {

class E2Server;

/// Server-side overload protection (DESIGN.md §11). Disabled by default:
/// with `enabled = false` every frame decodes and dispatches inline, exactly
/// the pre-overload behavior. Enabling it routes ingest through admission
/// control (per-agent DATA rate limits with flood-quarantine escalation) and
/// a bounded two-class priority queue, so CONTROL transactions stay timely
/// while a storm sheds DATA with exact accounting.
struct OverloadConfig {
  bool enabled = false;
  /// Bounded ingest queue, per class. CONTROL drains strictly before DATA.
  std::size_t control_queue = 1024;
  std::size_t data_queue = 4096;
  overload::ShedPolicy shed_policy = overload::ShedPolicy::fair_per_agent;
  /// Frames decoded+dispatched per reactor turn; the remainder re-posts, so
  /// timers and fresh CONTROL traffic interleave with a deep backlog.
  std::size_t dispatch_batch = 64;
  /// Per-agent DATA admission rate (indications/s; 0 = unlimited) and bucket
  /// depth (0 = one second's worth).
  double data_rate = 0.0;
  double data_burst = 0.0;
  /// Escalation ladder: this many rate-limited drops inside `flood_window`
  /// flood-quarantines the agent (on_agent_quarantined fires); its DATA is
  /// then dropped at the door until `flood_cooldown` passes, after which the
  /// next frame restores it (on_agent_reconnected). 0 = never escalate.
  std::uint32_t flood_threshold = 0;
  Nanos flood_window = kSecond;
  Nanos flood_cooldown = 5 * kSecond;
  /// Deadline budget for in-flight RIC control transactions: expiry fails
  /// the transaction fast with a transport cause instead of waiting forever.
  /// 0 = no deadline. Applies independently of `enabled`.
  Nanos ctrl_deadline = 0;
};

/// Callbacks delivered for one subscription. All run on the reactor thread.
struct SubCallbacks {
  std::function<void(const e2ap::SubscriptionResponse&)> on_response;
  std::function<void(const e2ap::SubscriptionFailure&)> on_failure;
  std::function<void(const e2ap::Indication&)> on_indication;
};

/// Callbacks for one control transaction.
struct CtrlCallbacks {
  std::function<void(const e2ap::ControlAck&)> on_ack;
  std::function<void(const e2ap::ControlFailure&)> on_failure;
};

/// Internal application base (paper Fig. 5): specializes a controller by
/// implementing SMs directly or exposing them northbound to xApps.
class IApp {
 public:
  virtual ~IApp() = default;
  /// Called when the iApp is added; keep the server pointer to subscribe.
  virtual void on_start(E2Server& server) { server_ = &server; }
  virtual void on_agent_connected(const AgentInfo& info) { (void)info; }
  virtual void on_agent_disconnected(AgentId id) { (void)id; }
  /// The agent's RAN function set changed (RICserviceUpdate).
  virtual void on_agent_updated(const AgentInfo& info) { (void)info; }
  /// No traffic from the agent for `quarantine_after`: probably dead, state
  /// still held. Either on_agent_reconnected or on_agent_disconnected (via
  /// expiry) follows eventually.
  virtual void on_agent_quarantined(AgentId id) { (void)id; }
  /// The agent returned with the same GlobalNodeId: same AgentId, RanDb
  /// entry refreshed, subscriptions replayed transparently. No
  /// disconnected/connected churn was delivered in between.
  virtual void on_agent_reconnected(const AgentInfo& info) { (void)info; }
  /// A complete RAN entity formed from disaggregated agents (§4.2.2).
  virtual void on_ran_formed(const RanEntity& entity) { (void)entity; }
  [[nodiscard]] virtual const char* name() const = 0;

 protected:
  E2Server* server_ = nullptr;
};

/// Handle identifying a subscription at the server.
struct SubHandle {
  AgentId agent = 0;
  e2ap::RicRequestId request;
  auto operator<=>(const SubHandle&) const = default;
};

// @affine(reactor)
class E2Server {
 public:
  struct Config {
    std::uint32_t ric_id = 21;
    WireFormat e2ap_format = WireFormat::per;
    /// Server-side knobs only (quarantine_after, expire_after, reestablish);
    /// the agent-side fields are ignored here. Defaults to retention and
    /// liveness OFF — a closed connection tears down immediately, exactly
    /// the pre-resilience behavior. Opt in by setting quarantine_after /
    /// expire_after (see ResilienceConfig).
    ResilienceConfig resilience = [] {
      ResilienceConfig rc;
      rc.quarantine_after = 0;
      rc.expire_after = 0;
      return rc;
    }();
    /// Overload protection; OFF by default (see OverloadConfig).
    OverloadConfig overload;
    /// Sharded deployments (DESIGN.md §13): this server instance is shard
    /// `shard` of `num_shards`. With num_shards > 1 the server enforces the
    /// GlobalNodeId-hash partition at setup time — an agent whose node id
    /// hashes to a different shard is rejected (counted in
    /// Stats::misrouted) instead of being silently served by the wrong
    /// single-threaded universe. Defaults reproduce the unsharded server.
    std::uint32_t shard = 0;
    std::uint32_t num_shards = 1;
  };

  E2Server(Reactor& reactor, Config cfg);
  ~E2Server();
  E2Server(const E2Server&) = delete;
  E2Server& operator=(const E2Server&) = delete;

  /// Accept agents on 127.0.0.1:`port` (0 = ephemeral; see port()).
  Status listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const noexcept;
  /// Attach an already-connected transport (in-process agents).
  void attach(std::shared_ptr<MsgTransport> transport);

  /// Add an iApp; its on_start runs immediately, and it will receive agent
  /// connection events from then on.
  void add_iapp(std::shared_ptr<IApp> app);

  // -- subscription management (used by iApps) --
  /// Sends a RICsubscriptionRequest to `agent`. The server fills the
  /// RICrequestID (requestor = iApp cookie, instance = running counter).
  Result<SubHandle> subscribe(AgentId agent, std::uint16_t ran_function_id,
                              Buffer event_trigger,
                              std::vector<e2ap::Action> actions,
                              SubCallbacks cbs);
  /// Sends a RICsubscriptionDeleteRequest and stops delivery.
  Status unsubscribe(const SubHandle& h);

  /// Sends a RICcontrolRequest; callbacks fire on ack/failure.
  Status send_control(AgentId agent, std::uint16_t ran_function_id,
                      Buffer header, Buffer message, CtrlCallbacks cbs,
                      bool ack_requested = true);

  [[nodiscard]] const RanDb& ran_db() const noexcept { return db_; }
  [[nodiscard]] Reactor& reactor() noexcept { return reactor_; }

  /// Connection-table size, including detached (retained) agents — lets
  /// tests assert that churn leaves no stale entries behind.
  [[nodiscard]] std::size_t num_connections() const noexcept {
    return conns_.size();
  }
  [[nodiscard]] std::size_t num_subscriptions() const noexcept {
    return subs_.size();
  }
  [[nodiscard]] std::size_t num_inflight_controls() const noexcept {
    return ctrls_.size();
  }

  struct Stats {
    std::uint64_t msgs_rx = 0;
    std::uint64_t msgs_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t indications_rx = 0;
    std::uint64_t heartbeats_rx = 0;   ///< empty RICserviceUpdates acked
    std::uint64_t reconnects = 0;      ///< agents rebound to their old id
    std::uint64_t subs_replayed = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t expiries = 0;
    std::uint64_t ctrls_failed_on_loss = 0;
    // -- overload accounting (DESIGN.md §11). Exact-reconciliation
    //    invariant, checked by the storm harness:
    //      msgs_rx == dispatched + rate_shed + flood_shed + queue_shed
    //                 + ingest_queued()
    std::uint64_t dispatched = 0;      ///< frames decoded+dispatched
    std::uint64_t rate_shed = 0;       ///< DATA shed by the rate limiter
    std::uint64_t flood_shed = 0;      ///< DATA dropped while flood-quarantined
    std::uint64_t queue_shed = 0;      ///< shed by the bounded ingest queue
    std::uint64_t flood_quarantines = 0;
    std::uint64_t flood_recoveries = 0;
    std::uint64_t ctrls_deadline_expired = 0;
    std::uint64_t agent_reported_sheds = 0;  ///< sum of peer shed reports
    /// Setup requests from agents whose GlobalNodeId hashes to another
    /// shard (sharded deployments only; the connection is closed).
    std::uint64_t misrouted = 0;
    /// Indications for a subscription this server does not know — e.g. an
    /// agent flushing its buffered backlog against a restarted shard whose
    /// replacement allocated different request ids (DESIGN.md §15). A
    /// counted drop, never a silent one: the global reconciliation
    /// invariant folds this in as a server-side shed.
    std::uint64_t orphan_indications = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Frames admitted but not yet dispatched (overload mode only).
  [[nodiscard]] std::size_t ingest_queued() const noexcept {
    return ingest_.size();
  }
  /// Per-class ingest queue accounting (overload mode only).
  [[nodiscard]] const overload::PriorityQueue<Buffer>& ingest_queue()
      const noexcept {
    return ingest_;
  }

 private:
  struct Conn {
    std::shared_ptr<MsgTransport> transport;
    bool established = false;
    /// Routing cell captured by the transport handlers: rebinding a
    /// returning agent to its old AgentId is `*route = old_id`, never a
    /// handler replacement (a handler must not destroy itself mid-call).
    std::shared_ptr<AgentId> route;
    Nanos last_rx = 0;
    bool quarantined = false;
    bool detached = false;   ///< transport lost, retained for re-establishment
    Nanos detached_at = 0;
    // -- overload admission state (used only when cfg_.overload.enabled) --
    overload::RateLimiter data_limiter;
    std::uint32_t flood_drops = 0;      ///< rate-shed count in current window
    Nanos flood_window_start = 0;
    bool flood_quarantined = false;
    Nanos flood_until = 0;
  };

  void on_message(AgentId id, BytesView wire);
  void on_close(AgentId id);
  /// Decode + visit one frame (the pre-overload on_message body). Shared by
  /// the inline path and the queued drain path.
  void dispatch(AgentId id, BytesView wire);
  // -- overload machinery (all on the reactor thread; DESIGN.md §11) --
  /// One rate-limited DATA drop: advance the flood window, escalate to
  /// flood-quarantine when flood_threshold is crossed.
  void note_flood_drop(AgentId id, Conn& c, Nanos t_now);
  /// Lift an elapsed flood-quarantine (called on any traffic from the agent).
  void maybe_recover_flood(AgentId id, Conn& c, Nanos t_now);
  void schedule_drain();
  void drain_ingest();
  void ctrl_deadline_expired(const SubHandle& h);
  void handle(AgentId id, const e2ap::SetupRequest& m);
  void handle(AgentId id, const e2ap::SubscriptionResponse& m);
  void handle(AgentId id, const e2ap::SubscriptionFailure& m);
  void handle(AgentId id, const e2ap::SubscriptionDeleteResponse& m);
  void handle(AgentId id, const e2ap::Indication& m);
  void handle(AgentId id, const e2ap::ControlAck& m);
  void handle(AgentId id, const e2ap::ControlFailure& m);
  void handle(AgentId id, const e2ap::ServiceUpdate& m);
  void handle(AgentId id, const e2ap::NodeConfigUpdate& m);
  Status send(AgentId id, const e2ap::Msg& m);

  // -- resilience machinery (all on the reactor thread) --
  /// Fail every in-flight control transaction of `id` with a transport
  /// cause: the request died with the link, pretending otherwise would
  /// leave iApps waiting forever.
  void fail_ctrls(AgentId id);
  /// Full teardown through the normal disconnect path: conn, RanDb entry,
  /// subscriptions, iApp notification.
  void expire_agent(AgentId id);
  void liveness_scan();
  void ensure_liveness_timer();
  /// Detached conn whose RanDb node id equals `node`, or 0 if none.
  [[nodiscard]] AgentId find_detached(const e2ap::GlobalNodeId& node) const;
  void replay_subscriptions(AgentId id);

  Reactor& reactor_;
  Config cfg_;
  const e2ap::Codec& codec_;
  std::unique_ptr<TcpListener> listener_;
  std::map<AgentId, Conn> conns_;
  AgentId next_agent_id_ = 1;
  RanDb db_;
  std::vector<std::shared_ptr<IApp>> iapps_;

  struct SubEntry {
    SubCallbacks cbs;
    std::uint16_t ran_function_id = 0;
    // Kept for transparent replay when the agent re-establishes.
    Buffer event_trigger;
    std::vector<e2ap::Action> actions;
    bool replaying = false;  ///< suppress the duplicate on_response
  };
  std::map<SubHandle, SubEntry> subs_;
  struct CtrlEntry {
    CtrlCallbacks cbs;
    std::uint16_t ran_function_id = 0;
    /// Armed when cfg_.overload.ctrl_deadline > 0; cancelled on completion.
    Reactor::TimerId deadline_timer = 0;
  };
  void cancel_ctrl_deadline(CtrlEntry& e);
  std::map<SubHandle, CtrlEntry> ctrls_;  // in-flight control txns
  std::uint16_t next_instance_ = 1;
  Reactor::TimerId liveness_timer_ = 0;
  /// Bounded two-class ingest queue; frames wait here (as raw wire bytes)
  /// when overload protection is on, CONTROL ahead of DATA.
  overload::PriorityQueue<Buffer> ingest_;
  bool drain_scheduled_ = false;
  /// Lifetime token for posted drain tasks, TcpTransport-style: the posted
  /// lambda checks it before touching `this`.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  Stats stats_;
};

}  // namespace flexric::server
