// Shard supervision: watchdog-driven failure detection, quarantine and
// stateful recovery (DESIGN.md §15).
//
// Each shard loop publishes a cheap heartbeat (loop-turn counter +
// last-progress timestamp) into the ShardHealthBoard from a reactor timer
// (ShardPool::enable_heartbeat). The home-side watchdog — this class —
// reads the slots and classifies every shard through a small state machine:
//
//   healthy ──stale──> degraded ──staler──> quarantined ──rebuild──>
//   recovering ──N fresh polls──> healthy
//
// with hysteresis on every edge back toward healthy (recover_hysteresis
// consecutive fresh polls), so one slow handler degrades a shard without
// flapping it and a limping replacement is not trusted early.
//
// Quarantine is containment + recovery, both on the home thread:
// ShardedE2Server::contain_shard stops routing agents/queries at the dead
// shard and fails in-flight cross-shard queries with a transport-style
// cause; rebuild_shard performs the stateful restart (ring drain/reseed,
// ledger harvest, reactor replacement under the same domain name, iApp and
// fan-out re-instantiation, directory resync) after which the shard's
// agents re-home through the PR-3 reconnect + subscription-replay
// machinery.
//
// Every duration is reactor-clock time: poll() takes `now` from whatever
// clock drives the home loop, so under a VirtualClock the entire
// detect/contain/rebuild/re-home sequence is bit-deterministic in the
// manual harness (tests/test_supervision.cpp) and MTTR is measured in
// virtual milliseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "common/shard_stats.hpp"
#include "transport/resilience.hpp"

namespace flexric {
class ShardPool;
}

namespace flexric::server {

class ShardedE2Server;

enum class ShardHealth : std::uint8_t {
  healthy = 0,
  degraded,
  quarantined,
  recovering,
};

[[nodiscard]] const char* shard_health_name(ShardHealth h) noexcept;

class ShardSupervisor {
 public:
  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t degradations = 0;   ///< healthy->degraded edges
    std::uint64_t quarantines = 0;    ///< ->quarantined edges
    std::uint64_t restarts = 0;       ///< rebuilds performed
    std::uint64_t recoveries = 0;     ///< recovering->healthy edges
    /// Last full quarantined->healthy recovery time (state-machine MTTR;
    /// the bench additionally measures detection->first-redelivered-
    /// indication). 0 until a recovery completes.
    Nanos mttr_last = 0;
  };

  ShardSupervisor(ShardPool& pool, ShardedE2Server& server,
                  SupervisionConfig cfg);

  /// One watchdog tick (home thread). `now` is home-reactor time — the
  /// same axis the shard heartbeats stamp, since every loop shares the
  /// clock. Classifies every shard, and on a quarantine edge contains the
  /// shard and (auto_restart) rebuilds it inside this call.
  void poll(Nanos now);

  [[nodiscard]] ShardHealth health(std::uint32_t shard) const noexcept {
    return states_[shard].health;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SupervisionConfig& config() const noexcept {
    return cfg_;
  }
  /// Beat age observed at the last poll (diagnostics / metrics).
  [[nodiscard]] Nanos last_age(std::uint32_t shard) const noexcept {
    return states_[shard].last_age;
  }
  /// Rebuilds performed on one shard (max_restarts budget accounting).
  [[nodiscard]] std::uint32_t restarts_of(std::uint32_t shard) const noexcept {
    return states_[shard].restarts;
  }

  /// Observer for every state edge, fired on the home thread after the
  /// transition (and after the rebuild, for ->recovering). The harness uses
  /// it to resume pumping a rebuilt shard and to timestamp detection.
  using TransitionHook =
      std::function<void(std::uint32_t, ShardHealth, ShardHealth)>;
  void set_on_transition(TransitionHook hook) { on_transition_ = std::move(hook); }

  /// Manual recovery for a quarantined shard when auto_restart is off (or
  /// the restart budget was spent): contain already happened; this rebuilds
  /// and moves the shard to recovering.
  void restart(std::uint32_t shard);

 private:
  struct ShardState {
    ShardHealth health = ShardHealth::healthy;
    std::uint64_t last_turns = 0;  ///< newest loop-turn counter seen
    Nanos last_beat = 0;           ///< reactor time of that beat
    Nanos last_age = 0;
    std::uint32_t fresh_polls = 0;  ///< hysteresis counter toward healthy
    std::uint32_t restarts = 0;
    Nanos quarantined_at = 0;  ///< detection timestamp (MTTR start)
  };

  void transition(std::uint32_t shard, ShardHealth to);
  void quarantine(std::uint32_t shard, Nanos now);

  ShardPool& pool_;
  ShardedE2Server& server_;
  SupervisionConfig cfg_;
  std::vector<ShardState> states_;
  Stats stats_;
  TransitionHook on_transition_;
  Nanos last_now_ = 0;  ///< time of the newest poll (restart() baseline)
};

}  // namespace flexric::server
