#include "server/server.hpp"

#include "common/affinity.hpp"
#include "common/log.hpp"
#include "server/sharding.hpp"

namespace flexric::server {

E2Server::E2Server(Reactor& reactor, Config cfg)
    : reactor_(reactor),
      cfg_(cfg),
      codec_(e2ap::codec_for(cfg.e2ap_format)),
      ingest_(overload::PriorityQueue<Buffer>::Config{
          cfg.overload.control_queue, cfg.overload.data_queue,
          cfg.overload.shed_policy}) {}

E2Server::~E2Server() {
  *alive_ = false;  // posted drain tasks must not touch a dead server
  if (liveness_timer_ != 0) reactor_.cancel_timer(liveness_timer_);
  for (auto& [h, e] : ctrls_) cancel_ctrl_deadline(e);
  for (auto& [id, conn] : conns_)
    if (conn.transport) {
      conn.transport->set_on_message(nullptr);
      conn.transport->set_on_close(nullptr);
    }
}

Status E2Server::listen(std::uint16_t port) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  listener_ = std::make_unique<TcpListener>(
      reactor_, [this](std::unique_ptr<TcpTransport> t) {
        attach(std::shared_ptr<MsgTransport>(std::move(t)));
      });
  return listener_->listen(port);
}

std::uint16_t E2Server::port() const noexcept {
  return listener_ ? listener_->port() : 0;
}

void E2Server::attach(std::shared_ptr<MsgTransport> transport) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  AgentId id = next_agent_id_++;
  // The handlers route through a shared cell, not a captured id: when a
  // returning agent is rebound to its old AgentId the cell is rewritten
  // in place, while the handlers (possibly mid-execution) stay untouched.
  auto route = std::make_shared<AgentId>(id);
  transport->set_on_message(
      [this, route](StreamId, BytesView wire) { on_message(*route, wire); });
  transport->set_on_close([this, route]() { on_close(*route); });
  Conn& c = conns_[id];
  c.transport = std::move(transport);
  c.route = std::move(route);
  c.last_rx = reactor_.now();
  c.data_limiter = overload::RateLimiter(cfg_.overload.data_rate,
                                         cfg_.overload.data_burst);
  ensure_liveness_timer();
}

void E2Server::add_iapp(std::shared_ptr<IApp> app) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  app->on_start(*this);
  // Replay already-connected agents so late-added iApps see the full RAN.
  for (AgentId id : db_.agents())
    if (const AgentInfo* info = db_.agent(id)) app->on_agent_connected(*info);
  iapps_.push_back(std::move(app));
}

Result<SubHandle> E2Server::subscribe(AgentId agent,
                                      std::uint16_t ran_function_id,
                                      Buffer event_trigger,
                                      std::vector<e2ap::Action> actions,
                                      SubCallbacks cbs) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  auto it = conns_.find(agent);
  if (it == conns_.end()) return Error{Errc::not_found, "unknown agent"};
  e2ap::SubscriptionRequest req;
  req.request.requestor = cfg_.ric_id & 0xFFFF;
  req.request.instance = next_instance_++;
  req.ran_function_id = ran_function_id;
  SubHandle h{agent, req.request};
  SubEntry entry;
  entry.cbs = std::move(cbs);
  entry.ran_function_id = ran_function_id;
  entry.event_trigger = event_trigger;  // retained for replay on reconnect
  entry.actions = actions;
  req.event_trigger = std::move(event_trigger);
  req.actions = std::move(actions);
  subs_[h] = std::move(entry);
  Status st = send(agent, e2ap::Msg{std::move(req)});
  if (!st.is_ok()) {
    subs_.erase(h);
    return st.error();
  }
  return h;
}

Status E2Server::unsubscribe(const SubHandle& h) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  auto it = subs_.find(h);
  if (it == subs_.end()) return {Errc::not_found, "unknown subscription"};
  e2ap::SubscriptionDeleteRequest req;
  req.request = h.request;
  req.ran_function_id = it->second.ran_function_id;
  // Drop the callbacks now: no further messages are delivered to the iApp
  // after it asked for deletion.
  subs_.erase(it);
  return send(h.agent, e2ap::Msg{std::move(req)});
}

Status E2Server::send_control(AgentId agent, std::uint16_t ran_function_id,
                              Buffer header, Buffer message,
                              CtrlCallbacks cbs, bool ack_requested) {
  FLEXRIC_ASSERT_AFFINITY(reactor_.affinity());
  auto it = conns_.find(agent);
  if (it == conns_.end()) return {Errc::not_found, "unknown agent"};
  e2ap::ControlRequest req;
  req.request.requestor = cfg_.ric_id & 0xFFFF;
  req.request.instance = next_instance_++;
  req.ran_function_id = ran_function_id;
  req.header = std::move(header);
  req.message = std::move(message);
  req.ack_requested = ack_requested;
  if (ack_requested) {
    SubHandle h{agent, req.request};
    CtrlEntry entry{std::move(cbs), ran_function_id};
    if (cfg_.overload.ctrl_deadline > 0)
      entry.deadline_timer = reactor_.add_timer(
          cfg_.overload.ctrl_deadline,
          // lint: allow(posted-lambda-lifetime) deadline timers are cancelled on txn completion and in ~E2Server
          [this, h] { ctrl_deadline_expired(h); }, /*periodic=*/false);
    ctrls_[h] = std::move(entry);
  }
  return send(agent, e2ap::Msg{std::move(req)});
}

Status E2Server::send(AgentId id, const e2ap::Msg& m) {
  auto it = conns_.find(id);
  if (it == conns_.end() || !it->second.transport ||
      !it->second.transport->is_open())
    return {Errc::io, "agent connection not open"};
  auto wire = codec_.encode(m);
  if (!wire) return wire.status();
  stats_.msgs_tx++;
  stats_.bytes_tx += wire->size();
  return it->second.transport->send(*wire);
}

void E2Server::on_close(AgentId id) {
  // In-flight control transactions die with the link either way: an answer
  // can never arrive for a request the agent may not have seen.
  fail_ctrls(id);

  auto it = conns_.find(id);
  const bool retain = cfg_.resilience.reestablish &&
                      cfg_.resilience.expire_after > 0 &&
                      it != conns_.end() && it->second.established &&
                      db_.agent(id) != nullptr;
  if (retain) {
    Conn& c = it->second;
    // This runs from inside the transport's own close path; destroying it
    // here would be use-after-free. Park the reference until the next loop
    // turn instead.
    if (c.transport) reactor_.post([t = std::move(c.transport)] {});
    c.route.reset();
    c.established = false;
    c.quarantined = false;
    c.detached = true;
    c.detached_at = reactor_.now();
    if (const AgentInfo* old = db_.agent(id)) {
      AgentInfo info = *old;
      info.connected = false;
      db_.add_agent(info);
    }
    LOG_INFO("server", "agent %u detached, retained for %lld ms", id,
             static_cast<long long>(cfg_.resilience.expire_after / kMilli));
    // iApps are deliberately not told "disconnected": the agent is
    // momentarily unreachable; reconnection or expiry resolves it.
    ensure_liveness_timer();
    return;
  }

  if (it != conns_.end()) {
    if (it->second.transport)
      reactor_.post([t = std::move(it->second.transport)] {});
    conns_.erase(it);
  }
  if (db_.agent(id) != nullptr) {
    db_.remove_agent(id);
    for (auto& app : iapps_) app->on_agent_disconnected(id);
  }
  // Drop dangling subscriptions of this agent.
  for (auto sit = subs_.begin(); sit != subs_.end();)
    sit = (sit->first.agent == id) ? subs_.erase(sit) : std::next(sit);
}

void E2Server::fail_ctrls(AgentId id) {
  for (auto it = ctrls_.begin(); it != ctrls_.end();) {
    if (it->first.agent != id) {
      ++it;
      continue;
    }
    e2ap::ControlFailure fail;
    fail.request = it->first.request;
    fail.ran_function_id = it->second.ran_function_id;
    fail.cause = {e2ap::Cause::Group::transport, 0 /*unspecified*/};
    cancel_ctrl_deadline(it->second);
    CtrlCallbacks cbs = std::move(it->second.cbs);
    it = ctrls_.erase(it);
    stats_.ctrls_failed_on_loss++;
    if (cbs.on_failure) cbs.on_failure(fail);
  }
}

void E2Server::cancel_ctrl_deadline(CtrlEntry& e) {
  if (e.deadline_timer != 0) {
    reactor_.cancel_timer(e.deadline_timer);
    e.deadline_timer = 0;
  }
}

void E2Server::ctrl_deadline_expired(const SubHandle& h) {
  auto it = ctrls_.find(h);
  if (it == ctrls_.end()) return;
  it->second.deadline_timer = 0;  // the firing timer is already gone
  e2ap::ControlFailure fail;
  fail.request = h.request;
  fail.ran_function_id = it->second.ran_function_id;
  // Deadline budget exhausted: fail fast with a transport cause — from the
  // iApp's perspective the outcome equals a lost link, and it must not keep
  // waiting on an answer that may never come (DESIGN.md §11).
  fail.cause = {e2ap::Cause::Group::transport, 0 /*unspecified*/};
  CtrlCallbacks cbs = std::move(it->second.cbs);
  ctrls_.erase(it);
  stats_.ctrls_deadline_expired++;
  LOG_WARN("server", "control txn (agent %u, instance %u) missed its deadline",
           h.agent, h.request.instance);
  if (cbs.on_failure) cbs.on_failure(fail);
}

void E2Server::expire_agent(AgentId id) {
  stats_.expiries++;
  LOG_INFO("server", "agent %u expired", id);
  auto it = conns_.find(id);
  if (it != conns_.end()) {
    if (it->second.transport) {
      it->second.transport->set_on_message(nullptr);
      it->second.transport->set_on_close(nullptr);
      it->second.transport->close();
      reactor_.post([t = std::move(it->second.transport)] {});
    }
    conns_.erase(it);
  }
  fail_ctrls(id);
  if (db_.agent(id) != nullptr) {
    db_.remove_agent(id);
    for (auto& app : iapps_) app->on_agent_disconnected(id);
  }
  for (auto sit = subs_.begin(); sit != subs_.end();)
    sit = (sit->first.agent == id) ? subs_.erase(sit) : std::next(sit);
}

void E2Server::liveness_scan() {
  const auto& rc = cfg_.resilience;
  const Nanos t_now = reactor_.now();
  std::vector<AgentId> to_expire;
  for (auto& [id, c] : conns_) {
    if (c.detached) {
      if (rc.expire_after > 0 && t_now - c.detached_at >= rc.expire_after)
        to_expire.push_back(id);
      continue;
    }
    if (!c.established || rc.quarantine_after <= 0) continue;
    const Nanos idle = t_now - c.last_rx;
    if (!c.quarantined && idle >= rc.quarantine_after) {
      c.quarantined = true;
      stats_.quarantines++;
      LOG_WARN("server", "agent %u quarantined (idle %lld ms)", id,
               static_cast<long long>(idle / kMilli));
      for (auto& app : iapps_) app->on_agent_quarantined(id);
    }
    if (c.quarantined && rc.expire_after > 0 && idle >= rc.expire_after)
      to_expire.push_back(id);
  }
  for (AgentId id : to_expire) expire_agent(id);
}

void E2Server::ensure_liveness_timer() {
  if (liveness_timer_ != 0) return;
  const auto& rc = cfg_.resilience;
  Nanos period = rc.quarantine_after > 0 ? rc.quarantine_after / 2
                                         : rc.expire_after / 2;
  if (period <= 0) return;
  if (period < kMilli) period = kMilli;
  liveness_timer_ =
      // lint: allow(posted-lambda-lifetime) liveness_timer_ is cancelled in ~E2Server before `this` goes away
      reactor_.add_timer(period, [this] { liveness_scan(); }, /*periodic=*/true);
}

AgentId E2Server::find_detached(const e2ap::GlobalNodeId& node) const {
  for (const auto& [cid, c] : conns_) {
    if (!c.detached) continue;
    const AgentInfo* info = db_.agent(cid);
    if (info != nullptr && info->node == node) return cid;
  }
  return 0;
}

void E2Server::replay_subscriptions(AgentId id) {
  for (auto& [h, entry] : subs_) {
    if (h.agent != id) continue;
    e2ap::SubscriptionRequest req;
    req.request = h.request;  // same RICrequestID: the iApp handle stays valid
    req.ran_function_id = entry.ran_function_id;
    req.event_trigger = entry.event_trigger;
    req.actions = entry.actions;
    entry.replaying = true;
    stats_.subs_replayed++;
    (void)send(id, e2ap::Msg{std::move(req)});
  }
}

void E2Server::on_message(AgentId id, BytesView wire) {
  stats_.msgs_rx++;
  stats_.bytes_rx += wire.size();
  auto cit = conns_.find(id);
  if (cit != conns_.end()) {
    cit->second.last_rx = reactor_.now();
    cit->second.quarantined = false;  // any traffic lifts the quarantine
  }
  const OverloadConfig& ov = cfg_.overload;
  if (!ov.enabled || cit == conns_.end()) {
    stats_.dispatched++;
    dispatch(id, wire);
    return;
  }

  // Admission control (DESIGN.md §11). Classify without a full decode —
  // both codecs lead with the message-type tag — so a frame that will be
  // shed never costs decode cycles. Unclassifiable frames ride the CONTROL
  // lane: the drain path's decode reports the protocol error as before.
  Conn& c = cit->second;
  const Nanos t_now = reactor_.now();
  maybe_recover_flood(id, c, t_now);
  auto type = codec_.peek_type(wire);
  const bool is_data = type.is_ok() && *type == e2ap::MsgType::indication;
  if (is_data) {
    if (c.flood_quarantined) {  // DATA is dropped at the door until cooldown
      stats_.flood_shed++;
      return;
    }
    if (!c.data_limiter.admit(t_now)) {
      stats_.rate_shed++;
      note_flood_drop(id, c, t_now);
      return;
    }
  }
  // Delta accounting, not the push() result: under drop_oldest / fair the
  // newcomer is admitted by evicting an already-queued frame, and that
  // eviction must land in queue_shed too or msgs_rx stops reconciling.
  const std::uint64_t shed_before = ingest_.shed();
  (void)ingest_.push(is_data ? overload::MsgClass::data
                             : overload::MsgClass::control,
                     id, Buffer(wire.begin(), wire.end()));
  stats_.queue_shed += ingest_.shed() - shed_before;
  schedule_drain();
}

void E2Server::maybe_recover_flood(AgentId id, Conn& c, Nanos t_now) {
  if (!c.flood_quarantined || t_now < c.flood_until) return;
  c.flood_quarantined = false;
  c.flood_drops = 0;
  // Fresh bucket: the agent earned a clean slate, not a debt.
  c.data_limiter = overload::RateLimiter(cfg_.overload.data_rate,
                                         cfg_.overload.data_burst);
  stats_.flood_recoveries++;
  LOG_INFO("server", "agent %u recovered from flood-quarantine", id);
  if (const AgentInfo* info = db_.agent(id))
    for (auto& app : iapps_) app->on_agent_reconnected(*info);
}

void E2Server::note_flood_drop(AgentId id, Conn& c, Nanos t_now) {
  const OverloadConfig& ov = cfg_.overload;
  if (ov.flood_threshold == 0) return;
  if (t_now - c.flood_window_start >= ov.flood_window) {
    c.flood_window_start = t_now;
    c.flood_drops = 0;
  }
  if (++c.flood_drops < ov.flood_threshold) return;
  // Escalate: throttling is not containing this peer. Quarantine its DATA
  // entirely for the cooldown; CONTROL still passes so the agent can keep
  // its session (heartbeats, subscription answers) alive.
  c.flood_quarantined = true;
  c.flood_until = t_now + ov.flood_cooldown;
  c.flood_drops = 0;
  stats_.flood_quarantines++;
  LOG_WARN("server", "agent %u flood-quarantined for %lld ms", id,
           static_cast<long long>(ov.flood_cooldown / kMilli));
  for (auto& app : iapps_) app->on_agent_quarantined(id);
}

void E2Server::schedule_drain() {
  if (drain_scheduled_ || ingest_.empty()) return;
  drain_scheduled_ = true;
  reactor_.post([this, alive = alive_] {
    if (!*alive) return;
    drain_scheduled_ = false;
    drain_ingest();
  });
}

void E2Server::drain_ingest() {
  std::size_t budget = cfg_.overload.dispatch_batch;
  if (budget == 0) budget = 1;
  while (budget-- > 0) {
    auto item = ingest_.pop();  // CONTROL strictly before DATA
    if (!item) return;
    stats_.dispatched++;
    dispatch(item->origin, BytesView(item->value));
  }
  schedule_drain();  // backlog remains: yield the loop, then continue
}

// @hotpath every decoded frame funnels through here
void E2Server::dispatch(AgentId id, BytesView wire) {
  auto msg = codec_.decode(wire);
  if (!msg) {
    LOG_WARN("server", "undecodable E2AP message from agent %u: %s", id,
             msg.error().to_string().c_str());
    // E2AP conformance: report the protocol error to the peer.
    e2ap::ErrorIndication err;
    err.cause = {e2ap::Cause::Group::protocol, 0 /*transfer-syntax-error*/};
    (void)send(id, e2ap::Msg{err});
    return;
  }
  std::visit(
      [this, id](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, e2ap::SetupRequest> ||
                      std::is_same_v<T, e2ap::SubscriptionResponse> ||
                      std::is_same_v<T, e2ap::SubscriptionFailure> ||
                      std::is_same_v<T, e2ap::SubscriptionDeleteResponse> ||
                      std::is_same_v<T, e2ap::Indication> ||
                      std::is_same_v<T, e2ap::ControlAck> ||
                      std::is_same_v<T, e2ap::ControlFailure> ||
                      std::is_same_v<T, e2ap::ServiceUpdate> ||
                      std::is_same_v<T, e2ap::NodeConfigUpdate>) {
          handle(id, m);
        } else {
          LOG_DEBUG("server", "ignoring %s at server",
                    e2ap::msg_type_name(e2ap::msg_type(e2ap::Msg{m})));
        }
      },
      *msg);
}

// @coldpath one-shot handshake, not on the indication path
void E2Server::handle(AgentId id, const e2ap::SetupRequest& m) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;

  if (cfg_.num_shards > 1 &&
      shard_of(m.node, cfg_.num_shards) != cfg_.shard) {
    // Sharded deployment, wrong door: this node id hashes to another
    // shard's reactor. Serving it here would break the shard-isolation
    // invariant (its state would live in the wrong single-threaded
    // universe), so reject loudly. Teardown is deferred one turn — the
    // transport's own handler is on the stack right now.
    stats_.misrouted++;
    LOG_WARN("server", "node %u/%u misrouted to shard %u (owner %u)",
             m.node.plmn, m.node.nb_id, cfg_.shard,
             shard_of(m.node, cfg_.num_shards));
    auto alive = alive_;
    reactor_.post([this, alive, id] {
      if (*alive) expire_agent(id);
    });
    return;
  }

  bool reconnected = false;
  if (AgentId old_id = cfg_.resilience.reestablish ? find_detached(m.node) : 0;
      old_id != 0 && old_id != id) {
    // The node came back: splice the fresh transport into its old identity
    // so subscriptions, handles and the RanDb entry survive. Rewriting the
    // route cell redirects the (currently executing) transport handlers.
    Conn fresh = std::move(it->second);
    conns_.erase(it);
    *fresh.route = old_id;
    Conn& old_conn = conns_[old_id];
    old_conn.transport = std::move(fresh.transport);
    old_conn.route = std::move(fresh.route);
    old_conn.detached = false;
    old_conn.quarantined = false;
    old_conn.last_rx = reactor_.now();
    id = old_id;
    it = conns_.find(id);
    reconnected = true;
    stats_.reconnects++;
    LOG_INFO("server", "agent %u re-established", id);
  }
  it->second.established = true;

  AgentInfo info;
  info.id = id;
  info.node = m.node;
  info.functions = m.ran_functions;
  info.connected = true;
  bool formed = db_.add_agent(info);

  e2ap::SetupResponse resp;
  resp.trans_id = m.trans_id;
  resp.ric_id = cfg_.ric_id;
  for (const auto& f : m.ran_functions) resp.accepted.push_back(f.id);
  (void)send(id, e2ap::Msg{std::move(resp)});

  if (reconnected) {
    for (auto& app : iapps_) app->on_agent_reconnected(info);
    replay_subscriptions(id);
    return;  // the entity never dissolved: no on_ran_formed churn
  }
  for (auto& app : iapps_) app->on_agent_connected(info);
  if (formed) {
    const RanEntity* e = db_.entity(m.node.plmn, m.node.nb_id);
    if (e != nullptr)
      for (auto& app : iapps_) app->on_ran_formed(*e);
  }
}

// @coldpath subscription lifecycle, not on the indication path
void E2Server::handle(AgentId id, const e2ap::SubscriptionResponse& m) {
  auto it = subs_.find(SubHandle{id, m.request});
  if (it == subs_.end()) return;
  if (it->second.replaying) {
    // Transparent re-establishment: the iApp already saw on_response at the
    // original subscribe; surfacing it again would look like a new grant.
    it->second.replaying = false;
    return;
  }
  if (it->second.cbs.on_response) it->second.cbs.on_response(m);
}

// @coldpath subscription lifecycle, not on the indication path
void E2Server::handle(AgentId id, const e2ap::SubscriptionFailure& m) {
  SubHandle h{id, m.request};
  auto it = subs_.find(h);
  if (it != subs_.end()) {
    // A replay rejection is a real failure — the iApp must learn its
    // subscription did not survive the reconnect.
    if (it->second.cbs.on_failure) it->second.cbs.on_failure(m);
    subs_.erase(h);
  }
}

// @coldpath subscription lifecycle, not on the indication path
void E2Server::handle(AgentId, const e2ap::SubscriptionDeleteResponse&) {
  // Callbacks were already dropped in unsubscribe(); nothing to do.
}

// @hotpath one call per telemetry indication frame
void E2Server::handle(AgentId id, const e2ap::Indication& m) {
  stats_.indications_rx++;
  // The subscription management selects the iApp for which the message is
  // destined and forwards it through the provided callback (§4.2.2).
  auto it = subs_.find(SubHandle{id, m.request});
  if (it == subs_.end()) {
    stats_.orphan_indications++;
    LOG_DEBUG("server", "indication for unknown subscription (agent %u)", id);
    return;
  }
  if (it->second.cbs.on_indication) it->second.cbs.on_indication(m);
}

// @coldpath control-plane response, not on the indication path
void E2Server::handle(AgentId id, const e2ap::ControlAck& m) {
  SubHandle h{id, m.request};
  auto it = ctrls_.find(h);
  if (it == ctrls_.end()) return;
  cancel_ctrl_deadline(it->second);
  auto cbs = std::move(it->second.cbs);
  ctrls_.erase(it);
  if (cbs.on_ack) cbs.on_ack(m);
}

// @coldpath control-plane response, not on the indication path
void E2Server::handle(AgentId id, const e2ap::ControlFailure& m) {
  SubHandle h{id, m.request};
  auto it = ctrls_.find(h);
  if (it == ctrls_.end()) return;
  cancel_ctrl_deadline(it->second);
  auto cbs = std::move(it->second.cbs);
  ctrls_.erase(it);
  if (cbs.on_failure) cbs.on_failure(m);
}

// @coldpath service management, not on the indication path
void E2Server::handle(AgentId id, const e2ap::ServiceUpdate& m) {
  if (m.added.empty() && m.modified.empty() && m.removed.empty()) {
    // Agent heartbeat probe: ack it without touching the RAN DB or waking
    // iApps — liveness traffic must not look like capability churn.
    stats_.heartbeats_rx++;
    e2ap::ServiceUpdateAck ack;
    ack.trans_id = m.trans_id;
    (void)send(id, e2ap::Msg{std::move(ack)});
    return;
  }
  // Update the RAN DB and acknowledge everything (no policy at the server).
  if (const AgentInfo* old = db_.agent(id)) {
    AgentInfo info = *old;
    for (const auto& f : m.added) info.functions.push_back(f);
    for (const auto& f : m.modified)
      for (auto& existing : info.functions)
        if (existing.id == f.id) existing = f;
    for (std::uint16_t rem : m.removed)
      std::erase_if(info.functions,
                    [rem](const auto& f) { return f.id == rem; });
    db_.add_agent(info);
    for (auto& app : iapps_) app->on_agent_updated(info);
  }
  e2ap::ServiceUpdateAck ack;
  ack.trans_id = m.trans_id;
  for (const auto& f : m.added) ack.accepted.push_back(f.id);
  for (const auto& f : m.modified) ack.accepted.push_back(f.id);
  (void)send(id, e2ap::Msg{std::move(ack)});
}

// @coldpath config management, not on the indication path
void E2Server::handle(AgentId id, const e2ap::NodeConfigUpdate& m) {
  e2ap::NodeConfigUpdateAck ack;
  ack.trans_id = m.trans_id;
  for (const auto& [name, blob] : m.components) {
    if (name == overload::kShedReportComponent) {
      // Agent-side shed report (one LE u64 delta): the peer had to drop
      // indications under backpressure and says so — zero silent drops.
      BufReader r{BytesView(blob)};
      if (auto delta = r.u64(); delta.is_ok()) {
        stats_.agent_reported_sheds += *delta;
        LOG_DEBUG("server", "agent %u reported %llu shed indications", id,
                  static_cast<unsigned long long>(*delta));
      }
    }
    ack.accepted_components.push_back(name);
  }
  (void)send(id, e2ap::Msg{std::move(ack)});
}

}  // namespace flexric::server
