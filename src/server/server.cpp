#include "server/server.hpp"

#include "common/log.hpp"

namespace flexric::server {

E2Server::E2Server(Reactor& reactor, Config cfg)
    : reactor_(reactor), cfg_(cfg), codec_(e2ap::codec_for(cfg.e2ap_format)) {}

E2Server::~E2Server() {
  for (auto& [id, conn] : conns_)
    if (conn.transport) {
      conn.transport->set_on_message(nullptr);
      conn.transport->set_on_close(nullptr);
    }
}

Status E2Server::listen(std::uint16_t port) {
  listener_ = std::make_unique<TcpListener>(
      reactor_, [this](std::unique_ptr<TcpTransport> t) {
        attach(std::shared_ptr<MsgTransport>(std::move(t)));
      });
  return listener_->listen(port);
}

std::uint16_t E2Server::port() const noexcept {
  return listener_ ? listener_->port() : 0;
}

void E2Server::attach(std::shared_ptr<MsgTransport> transport) {
  AgentId id = next_agent_id_++;
  transport->set_on_message(
      [this, id](StreamId, BytesView wire) { on_message(id, wire); });
  transport->set_on_close([this, id]() { on_close(id); });
  conns_[id] = Conn{std::move(transport), false};
}

void E2Server::add_iapp(std::shared_ptr<IApp> app) {
  app->on_start(*this);
  // Replay already-connected agents so late-added iApps see the full RAN.
  for (AgentId id : db_.agents())
    if (const AgentInfo* info = db_.agent(id)) app->on_agent_connected(*info);
  iapps_.push_back(std::move(app));
}

Result<SubHandle> E2Server::subscribe(AgentId agent,
                                      std::uint16_t ran_function_id,
                                      Buffer event_trigger,
                                      std::vector<e2ap::Action> actions,
                                      SubCallbacks cbs) {
  auto it = conns_.find(agent);
  if (it == conns_.end()) return Error{Errc::not_found, "unknown agent"};
  e2ap::SubscriptionRequest req;
  req.request.requestor = cfg_.ric_id & 0xFFFF;
  req.request.instance = next_instance_++;
  req.ran_function_id = ran_function_id;
  req.event_trigger = std::move(event_trigger);
  req.actions = std::move(actions);
  SubHandle h{agent, req.request};
  subs_[h] = SubEntry{std::move(cbs), ran_function_id};
  Status st = send(agent, e2ap::Msg{std::move(req)});
  if (!st.is_ok()) {
    subs_.erase(h);
    return st.error();
  }
  return h;
}

Status E2Server::unsubscribe(const SubHandle& h) {
  auto it = subs_.find(h);
  if (it == subs_.end()) return {Errc::not_found, "unknown subscription"};
  e2ap::SubscriptionDeleteRequest req;
  req.request = h.request;
  req.ran_function_id = it->second.ran_function_id;
  // Drop the callbacks now: no further messages are delivered to the iApp
  // after it asked for deletion.
  subs_.erase(it);
  return send(h.agent, e2ap::Msg{std::move(req)});
}

Status E2Server::send_control(AgentId agent, std::uint16_t ran_function_id,
                              Buffer header, Buffer message,
                              CtrlCallbacks cbs, bool ack_requested) {
  auto it = conns_.find(agent);
  if (it == conns_.end()) return {Errc::not_found, "unknown agent"};
  e2ap::ControlRequest req;
  req.request.requestor = cfg_.ric_id & 0xFFFF;
  req.request.instance = next_instance_++;
  req.ran_function_id = ran_function_id;
  req.header = std::move(header);
  req.message = std::move(message);
  req.ack_requested = ack_requested;
  if (ack_requested) ctrls_[SubHandle{agent, req.request}] = std::move(cbs);
  return send(agent, e2ap::Msg{std::move(req)});
}

Status E2Server::send(AgentId id, const e2ap::Msg& m) {
  auto it = conns_.find(id);
  if (it == conns_.end() || !it->second.transport->is_open())
    return {Errc::io, "agent connection not open"};
  auto wire = codec_.encode(m);
  if (!wire) return wire.status();
  stats_.msgs_tx++;
  stats_.bytes_tx += wire->size();
  return it->second.transport->send(*wire);
}

void E2Server::on_close(AgentId id) {
  conns_.erase(id);
  if (db_.agent(id) != nullptr) {
    db_.remove_agent(id);
    for (auto& app : iapps_) app->on_agent_disconnected(id);
  }
  // Drop dangling subscriptions/control transactions of this agent.
  for (auto it = subs_.begin(); it != subs_.end();)
    it = (it->first.agent == id) ? subs_.erase(it) : std::next(it);
  for (auto it = ctrls_.begin(); it != ctrls_.end();)
    it = (it->first.agent == id) ? ctrls_.erase(it) : std::next(it);
}

void E2Server::on_message(AgentId id, BytesView wire) {
  stats_.msgs_rx++;
  stats_.bytes_rx += wire.size();
  auto msg = codec_.decode(wire);
  if (!msg) {
    LOG_WARN("server", "undecodable E2AP message from agent %u: %s", id,
             msg.error().to_string().c_str());
    // E2AP conformance: report the protocol error to the peer.
    e2ap::ErrorIndication err;
    err.cause = {e2ap::Cause::Group::protocol, 0 /*transfer-syntax-error*/};
    send(id, e2ap::Msg{err});
    return;
  }
  std::visit(
      [this, id](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, e2ap::SetupRequest> ||
                      std::is_same_v<T, e2ap::SubscriptionResponse> ||
                      std::is_same_v<T, e2ap::SubscriptionFailure> ||
                      std::is_same_v<T, e2ap::SubscriptionDeleteResponse> ||
                      std::is_same_v<T, e2ap::Indication> ||
                      std::is_same_v<T, e2ap::ControlAck> ||
                      std::is_same_v<T, e2ap::ControlFailure> ||
                      std::is_same_v<T, e2ap::ServiceUpdate>) {
          handle(id, m);
        } else {
          LOG_DEBUG("server", "ignoring %s at server",
                    e2ap::msg_type_name(e2ap::msg_type(e2ap::Msg{m})));
        }
      },
      *msg);
}

void E2Server::handle(AgentId id, const e2ap::SetupRequest& m) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second.established = true;

  AgentInfo info;
  info.id = id;
  info.node = m.node;
  info.functions = m.ran_functions;
  info.connected = true;
  bool formed = db_.add_agent(info);

  e2ap::SetupResponse resp;
  resp.trans_id = m.trans_id;
  resp.ric_id = cfg_.ric_id;
  for (const auto& f : m.ran_functions) resp.accepted.push_back(f.id);
  send(id, e2ap::Msg{std::move(resp)});

  for (auto& app : iapps_) app->on_agent_connected(info);
  if (formed) {
    const RanEntity* e = db_.entity(m.node.plmn, m.node.nb_id);
    if (e != nullptr)
      for (auto& app : iapps_) app->on_ran_formed(*e);
  }
}

void E2Server::handle(AgentId id, const e2ap::SubscriptionResponse& m) {
  auto it = subs_.find(SubHandle{id, m.request});
  if (it != subs_.end() && it->second.cbs.on_response)
    it->second.cbs.on_response(m);
}

void E2Server::handle(AgentId id, const e2ap::SubscriptionFailure& m) {
  SubHandle h{id, m.request};
  auto it = subs_.find(h);
  if (it != subs_.end()) {
    if (it->second.cbs.on_failure) it->second.cbs.on_failure(m);
    subs_.erase(h);
  }
}

void E2Server::handle(AgentId, const e2ap::SubscriptionDeleteResponse&) {
  // Callbacks were already dropped in unsubscribe(); nothing to do.
}

void E2Server::handle(AgentId id, const e2ap::Indication& m) {
  stats_.indications_rx++;
  // The subscription management selects the iApp for which the message is
  // destined and forwards it through the provided callback (§4.2.2).
  auto it = subs_.find(SubHandle{id, m.request});
  if (it == subs_.end()) {
    LOG_DEBUG("server", "indication for unknown subscription (agent %u)", id);
    return;
  }
  if (it->second.cbs.on_indication) it->second.cbs.on_indication(m);
}

void E2Server::handle(AgentId id, const e2ap::ControlAck& m) {
  SubHandle h{id, m.request};
  auto it = ctrls_.find(h);
  if (it == ctrls_.end()) return;
  auto cbs = std::move(it->second);
  ctrls_.erase(it);
  if (cbs.on_ack) cbs.on_ack(m);
}

void E2Server::handle(AgentId id, const e2ap::ControlFailure& m) {
  SubHandle h{id, m.request};
  auto it = ctrls_.find(h);
  if (it == ctrls_.end()) return;
  auto cbs = std::move(it->second);
  ctrls_.erase(it);
  if (cbs.on_failure) cbs.on_failure(m);
}

void E2Server::handle(AgentId id, const e2ap::ServiceUpdate& m) {
  // Update the RAN DB and acknowledge everything (no policy at the server).
  if (const AgentInfo* old = db_.agent(id)) {
    AgentInfo info = *old;
    for (const auto& f : m.added) info.functions.push_back(f);
    for (const auto& f : m.modified)
      for (auto& existing : info.functions)
        if (existing.id == f.id) existing = f;
    for (std::uint16_t rem : m.removed)
      std::erase_if(info.functions,
                    [rem](const auto& f) { return f.id == rem; });
    db_.add_agent(info);
    for (auto& app : iapps_) app->on_agent_updated(info);
  }
  e2ap::ServiceUpdateAck ack;
  ack.trans_id = m.trans_id;
  for (const auto& f : m.added) ack.accepted.push_back(f.id);
  for (const auto& f : m.modified) ack.accepted.push_back(f.id);
  send(id, e2ap::Msg{std::move(ack)});
}

}  // namespace flexric::server
