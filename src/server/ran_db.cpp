#include "server/ran_db.hpp"

namespace flexric::server {

bool RanDb::add_agent(const AgentInfo& info) {
  agents_[info.id] = info;
  auto key = entity_key(info.node.plmn, info.node.nb_id);
  RanEntity& e = entities_[key];
  e.plmn = info.node.plmn;
  e.nb_id = info.node.nb_id;
  bool was_complete = e.complete();
  switch (info.node.type) {
    case e2ap::NodeType::enb:
    case e2ap::NodeType::gnb:
      e.monolithic = info.id;
      break;
    case e2ap::NodeType::cu:
      e.cu = info.id;
      break;
    case e2ap::NodeType::du:
      e.du = info.id;
      break;
  }
  return !was_complete && e.complete();
}

void RanDb::remove_agent(AgentId id) {
  auto it = agents_.find(id);
  if (it == agents_.end()) return;
  auto key = entity_key(it->second.node.plmn, it->second.node.nb_id);
  auto eit = entities_.find(key);
  if (eit != entities_.end()) {
    RanEntity& e = eit->second;
    if (e.monolithic == id) e.monolithic.reset();
    if (e.cu == id) e.cu.reset();
    if (e.du == id) e.du.reset();
    if (!e.monolithic && !e.cu && !e.du) entities_.erase(eit);
  }
  agents_.erase(it);
}

const AgentInfo* RanDb::agent(AgentId id) const {
  auto it = agents_.find(id);
  return it == agents_.end() ? nullptr : &it->second;
}

std::vector<AgentId> RanDb::agents() const {
  std::vector<AgentId> out;
  out.reserve(agents_.size());
  for (const auto& [id, info] : agents_) out.push_back(id);
  return out;
}

std::vector<AgentInfo> RanDb::snapshot() const {
  std::vector<AgentInfo> out;
  out.reserve(agents_.size());
  for (const auto& [id, info] : agents_) out.push_back(info);
  return out;
}

const RanEntity* RanDb::entity(std::uint32_t plmn, std::uint32_t nb_id) const {
  auto it = entities_.find(entity_key(plmn, nb_id));
  return it == entities_.end() ? nullptr : &it->second;
}

std::vector<const RanEntity*> RanDb::entities() const {
  std::vector<const RanEntity*> out;
  out.reserve(entities_.size());
  for (const auto& [key, e] : entities_) out.push_back(&e);
  return out;
}

std::vector<AgentId> RanDb::agents_with_function(std::uint16_t fn_id) const {
  std::vector<AgentId> out;
  for (const auto& [id, info] : agents_)
    for (const auto& f : info.functions)
      if (f.id == fn_id) {
        out.push_back(id);
        break;
      }
  return out;
}

}  // namespace flexric::server
