// Sharded RIC: N E2Servers, one per shard reactor (DESIGN.md §13).
//
// Breaks the single-reactor ceiling of §4.4 without giving up its safety
// story: each shard is still a single-threaded universe (one Reactor, one
// E2Server, its agents' connections), and agents are partitioned onto
// shards by GlobalNodeId hash (server/sharding.hpp). Nothing is shared
// between shards on the hot path; every cross-shard flow goes through a
// bounded SPSC ring:
//
//   shard -> home   directory events (agent lifecycle; feeds the merged
//                   RAN-DB, where a CU on shard A and a DU on shard B
//                   assemble into one RanEntity — merge-on-query)
//   shard -> home   xApp fan-out indications (subscribe_fanout)
//   shard -> home   northbound query replies (query())
//   home  -> shard  posted jobs (ShardPool's SPSC injector + eventfd wake)
//
// Stats are merge-on-query too: each shard publishes its overload ledger
// into its cache-aligned ShardCounterBoard slot from its own thread (a
// periodic timer), and global_ledger() sums the slots, so the §11
// reconciliation invariant survives sharding:
//
//   sum(emitted) == sum(delivered) + sum(agent_shed) + sum(server_shed)
//
// Ownership vocabulary: per-shard state is @affine(shard) — the runtime
// guard is the shard reactor's named DomainAffinity ("shard0", ...), the
// static proof is tools/analyze's domain-ownership pass, and the rings are
// the sanctioned conduits for both.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/shard_stats.hpp"
#include "common/spsc_ring.hpp"
#include "server/server.hpp"
#include "server/sharding.hpp"
#include "transport/resilience.hpp"
#include "transport/shard_pool.hpp"

namespace flexric::server {

class ShardSupervisor;

struct ShardedConfig {
  /// Per-shard E2Server template; `shard`/`num_shards` are filled in per
  /// instance (enabling the misroute gate at every shard's door).
  E2Server::Config server;
  std::size_t event_ring = 1024;   ///< directory events, per shard
  std::size_t fanout_ring = 4096;  ///< fan-out indications, per shard
  std::size_t reply_ring = 1024;   ///< query replies, per shard
  /// Cadence of each shard's ledger publish into the counter board.
  Nanos publish_period = 10 * kMilli;
  /// Watchdog + quarantine + stateful-restart knobs (DESIGN.md §15). The
  /// shard heartbeat is armed on the pool at construction when enabled.
  SupervisionConfig supervise;
};

class ShardedE2Server {
 public:
  /// One cross-shard fan-out delivery: `agent` is the *global* agent id
  /// (shard index in the top byte, see server/sharding.hpp).
  struct FanoutIndication {
    std::uint32_t shard = 0;
    AgentId agent = 0;
    e2ap::Indication ind;
  };
  using FanoutHandler = std::function<void(const FanoutIndication&)>;
  using IAppFactory = std::function<std::shared_ptr<IApp>(std::uint32_t)>;

  /// The pool provides the reactors (and, in threaded mode, the threads).
  /// Construct, configure (add_iapp_factory / subscribe_fanout /
  /// listen_all), then ShardPool::start() for threaded operation.
  ShardedE2Server(ShardPool& pool, ShardedConfig cfg);
  ~ShardedE2Server();
  ShardedE2Server(const ShardedE2Server&) = delete;
  ShardedE2Server& operator=(const ShardedE2Server&) = delete;

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return pool_.size();
  }
  [[nodiscard]] std::uint32_t shard_for(
      const e2ap::GlobalNodeId& node) const noexcept {
    return shard_of(node, num_shards());
  }

  /// Direct access to one shard's server. @cross_domain — legitimate only
  /// from that shard's thread (a posted job), from the deterministic manual
  /// harness (one thread owns every domain), or after ShardPool::stop()
  /// joined the loops.
  [[nodiscard]] E2Server& shard_server(std::uint32_t shard) noexcept {
    return *cells_[shard]->server;
  }
  [[nodiscard]] Reactor& shard_reactor(std::uint32_t shard) noexcept {
    return pool_.reactor(shard);
  }

  /// Listen on every shard (port 0 = ephemeral per shard). An agent dials
  /// port(shard_for(node)) — dialing any other shard trips the misroute
  /// gate. Call before ShardPool::start().
  Status listen_all(std::uint16_t base_port = 0);
  [[nodiscard]] std::uint16_t port(std::uint32_t shard) const noexcept {
    return ports_[shard];
  }

  /// Instantiate `factory(shard)` on every shard as a per-shard iApp (the
  /// sharded equivalent of E2Server::add_iapp). Call before agents connect.
  void add_iapp_factory(const IAppFactory& factory);

  /// Cross-shard xApp fan-out: every current and future agent advertising
  /// `fn_id` (on any shard) is subscribed with the given trigger/actions;
  /// indications cross shard->home through the fan-out ring and land in
  /// `handler` on the home thread (during pump_home). Ring overflow is shed
  /// with exact accounting (ledger fanout_shed), never silently. Call
  /// before agents connect.
  void subscribe_fanout(std::uint16_t fn_id, Buffer trigger,
                        std::vector<e2ap::Action> actions,
                        FanoutHandler handler);

  /// Drain every shard->home ring in fixed shard order: apply directory
  /// events to the merged RAN-DB, deliver fan-out indications, run query
  /// replies. Home-thread only. The fixed order is what the deterministic
  /// harness replays byte-identically. Returns items processed.
  int pump_home();

  /// Merged RAN view (global agent ids). Assembled exclusively from ring
  /// events — merge-on-query, never by reaching into shard state.
  [[nodiscard]] const RanDb& directory() const noexcept { return directory_; }

  /// Fires (on the home thread) when agents across any shards complete a
  /// RAN entity — e.g. a CU on shard A plus a DU on shard B.
  void set_on_ran_formed(std::function<void(const RanEntity&)> cb) {
    on_ran_formed_ = std::move(cb);
  }

  /// Merge-on-query global ledger: field-wise sum of the per-shard board
  /// slots plus every retired incarnation's harvested ledger (a restarted
  /// shard starts its slot from zero; the corpse's counts live on in the
  /// retired total, so Σ stays monotone across recovery). Exact once the
  /// shards' publish timers have fired after quiescence.
  [[nodiscard]] ShardLedger global_ledger() const noexcept {
    ShardLedger total = board_.sum();
    for (const ShardLedger& r : retired_ledgers_) total.add(r);
    return total;
  }
  [[nodiscard]] ShardLedger shard_ledger(std::uint32_t shard) const noexcept {
    ShardLedger v = board_.read(shard);
    v.add(retired_ledgers_[shard]);
    return v;
  }
  /// Harvested ledger of `shard`'s dead incarnations alone (home thread).
  [[nodiscard]] const ShardLedger& retired_ledger(
      std::uint32_t shard) const noexcept {
    return retired_ledgers_[shard];
  }
  [[nodiscard]] const ShardCounterBoard& board() const noexcept {
    return board_;
  }

  /// Run `job` on `shard`'s loop with its E2Server; `done` runs back on the
  /// home thread (next pump_home) with the result, or with a transport-style
  /// error if the shard is quarantined while the query is in flight. The
  /// northbound REST/telemetry query path: request over the injector ring,
  /// reply over the reply ring, no shared state. Errc::capacity when the
  /// injector ring is full; Errc::rejected immediately when the shard is
  /// already quarantined (fail fast, don't enqueue into a dead loop).
  using QueryDone = std::function<void(Result<std::string>)>;
  Status query(std::uint32_t shard, std::function<std::string(E2Server&)> job,
               QueryDone done);

  /// Run an arbitrary job on a shard's loop (fire-and-forget).
  /// Errc::rejected when the shard is quarantined.
  Status post_to_shard(std::uint32_t shard, std::function<void()> job) {
    if (!accepting_[shard])
      return Status{Errc::rejected, "shard quarantined"};
    return pool_.post(shard, std::move(job));
  }

  /// Directory resyncs performed after event-ring overflow (home thread).
  [[nodiscard]] std::uint64_t directory_resyncs() const noexcept {
    return resyncs_;
  }

  // -- supervision & recovery (DESIGN.md §15) -------------------------------

  /// The watchdog that owns the healthy/degraded/quarantined/recovering
  /// classification. Poll it from the home loop (ShardSupervisor::poll).
  [[nodiscard]] ShardSupervisor& supervisor() noexcept { return *supervisor_; }
  [[nodiscard]] const ShardSupervisor& supervisor() const noexcept {
    return *supervisor_;
  }

  /// Is `shard` accepting new agents and queries? False from containment
  /// until its rebuild completes — the sharded equivalent of the listener
  /// socket being down while a process restarts.
  [[nodiscard]] bool accepting(std::uint32_t shard) const noexcept {
    return accepting_[shard] != 0;
  }

  /// Containment half of quarantine (home thread; normally driven by the
  /// supervisor): stop accepting agents/queries for `shard` and fail every
  /// in-flight cross-shard query against it with a transport-style cause.
  void contain_shard(std::uint32_t shard);

  /// Stateful restart (home thread; normally driven by the supervisor):
  /// deliver the shard's parked directory events, shed its parked fan-out
  /// indications with exact accounting (supervisor_shed), harvest its
  /// ledger into the retired total, tear the server + reactor down, spin a
  /// replacement under the same domain name (re-listening on the same
  /// port), reseed the ring endpoints via the sanctioned @recovery path,
  /// re-instantiate the iApp factories and fan-out subscription, and wipe +
  /// resync this shard's slice of the merged directory. Agents re-home
  /// through their own PR-3 reconnect machinery once accepting() is true
  /// again.
  void rebuild_shard(std::uint32_t shard);

  /// Indications/frames destroyed by supervision itself (fan-out parked in
  /// a dead shard's ring, frames stranded in a dead ingest queue): the
  /// fourth shed term of the global invariant
  ///   Σemitted == Σdelivered + Σagent_shed + Σserver_shed + Σsupervisor_shed
  [[nodiscard]] std::uint64_t supervisor_shed() const noexcept {
    return supervisor_shed_;
  }
  /// In-flight cross-shard queries failed by containment plus queries
  /// refused while quarantined.
  [[nodiscard]] std::uint64_t queries_failed() const noexcept {
    return queries_failed_;
  }

 private:
  struct DirEvent {
    enum class Kind { upsert, remove, snapshot };
    Kind kind = Kind::upsert;
    AgentInfo info;                  ///< upsert
    AgentId id = 0;                  ///< remove (shard-local id)
    std::vector<AgentInfo> agents;   ///< snapshot (shard-local ids)
  };

  class Relay;  // per-shard @affine(shard) bridge iApp (defined in .cpp)

  /// One northbound query reply crossing shard -> home: the id keys the
  /// home-side pending registry, so containment can fail a query whose
  /// shard died before replying.
  struct QueryReply {
    std::uint64_t id = 0;
    std::string payload;
  };

  /// Everything owned by one shard plus its shard->home conduits. The
  /// server/relay cells are @affine(shard); the rings are the conduits.
  struct Cell {
    std::unique_ptr<E2Server> server;
    std::shared_ptr<Relay> relay;
    std::unique_ptr<SpscRing<DirEvent>> events;
    std::unique_ptr<SpscRing<FanoutIndication>> fanout;
    std::unique_ptr<SpscRing<QueryReply>> replies;
  };

  struct PendingQuery {
    std::uint32_t shard = 0;
    QueryDone done;
  };

  void build_cell(std::uint32_t shard, bool fresh_rings);
  void apply_dir_event(std::uint32_t shard, DirEvent& ev);
  void request_resyncs();
  void fail_pending_queries(std::uint32_t shard);
  int drain_events(std::uint32_t shard);
  int drain_fanout(std::uint32_t shard, bool deliver);
  int drain_replies(std::uint32_t shard, bool deliver);

  ShardPool& pool_;
  ShardedConfig cfg_;
  std::vector<std::unique_ptr<Cell>> cells_;
  /// Cells of force-restarted shards in threaded mode: their loop thread
  /// may still be wedged inside them, so they are parked here and leaked
  /// at destruction (mirror of ShardPool's retired universes). Manual-mode
  /// rebuilds reuse the cell and its rings via reset_endpoints instead.
  std::vector<std::unique_ptr<Cell>> retired_cells_;
  std::vector<std::uint16_t> ports_;
  ShardCounterBoard board_;

  // -- home-thread state (owned by whoever calls pump_home) --
  DomainAffinity home_{"reactor"};
  RanDb directory_;
  std::function<void(const RanEntity&)> on_ran_formed_;
  FanoutHandler fanout_handler_;
  std::uint64_t seen_events_lost_ = 0;
  std::uint64_t resyncs_ = 0;
  // Supervision state (home thread).
  std::unique_ptr<ShardSupervisor> supervisor_;
  std::vector<std::uint8_t> accepting_;
  std::vector<ShardLedger> retired_ledgers_;
  std::map<std::uint64_t, PendingQuery> pending_;  ///< ordered: deterministic
  std::uint64_t next_query_id_ = 0;
  std::uint64_t supervisor_shed_ = 0;
  std::uint64_t queries_failed_ = 0;
  // Fan-out subscription args kept home-side so a rebuilt shard re-arms.
  bool fanout_armed_ = false;
  std::uint16_t fanout_fn_ = 0;
  Buffer fanout_trigger_;
  std::vector<e2ap::Action> fanout_actions_;
  std::vector<IAppFactory> factories_;
};

}  // namespace flexric::server
