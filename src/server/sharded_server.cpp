#include "server/sharded_server.hpp"

#include "common/log.hpp"
#include "server/supervisor.hpp"

namespace flexric::server {

// ---------------------------------------------------------------------------
// Relay: the per-shard half of every cross-shard path
// ---------------------------------------------------------------------------

// One Relay runs inside each shard's E2Server as an ordinary iApp, entirely
// on that shard's reactor thread; its only outputs are ring pushes and
// counter-board publishes. Everything it owns is shard-affine.
// @affine(shard)
class ShardedE2Server::Relay final : public IApp {
 public:
  Relay(std::uint32_t shard, Cell& cell, ShardCounterBoard& board,
        Nanos publish_period)
      : shard_(shard),
        cell_(cell),
        board_(board),
        epoch_(board.epoch_of(shard)),
        publish_period_(publish_period) {}

  ~Relay() override { *alive_ = false; }

  [[nodiscard]] const char* name() const override { return "shard-relay"; }

  void on_start(E2Server& server) override {
    IApp::on_start(server);
    server.reactor().add_timer(
        publish_period_,
        [this, alive = std::weak_ptr<bool>(alive_)] {
          auto a = alive.lock();
          if (!a || !*a) return;
          publish();
        },
        /*periodic=*/true);
  }

  void on_agent_connected(const AgentInfo& info) override {
    push_upsert(info);
    maybe_subscribe_fanout(info);
  }
  void on_agent_updated(const AgentInfo& info) override { push_upsert(info); }
  void on_agent_reconnected(const AgentInfo& info) override {
    // Re-establishment keeps the AgentId and replays subscriptions
    // transparently (server.cpp), so the fan-out subscription survives; the
    // directory only needs the refreshed info.
    push_upsert(info);
  }
  void on_agent_disconnected(AgentId id) override {
    DirEvent ev;
    ev.kind = DirEvent::Kind::remove;
    ev.id = id;
    if (!push_event(std::move(ev))) note_event_lost();
  }

  /// Arm cross-shard fan-out (home thread, before agents connect — or
  /// during a rebuild, before the replacement server starts).
  void set_fanout(std::uint16_t fn_id, Buffer trigger,
                  std::vector<e2ap::Action> actions) {
    fanout_fn_ = fn_id;
    fanout_trigger_ = std::move(trigger);
    fanout_actions_ = std::move(actions);
    fanout_armed_ = true;
  }

  /// Home lost directory events (ring overflow): ship a full snapshot.
  /// Retried from the publish timer until the ring accepts it.
  void request_resync() {
    pending_resync_ = true;
    try_resync();
  }

  void note_reply_shed() { reply_shed_++; }

  /// One untorn ledger image of this shard right now. Shard-thread normally;
  /// the home thread may call it during a manual-mode rebuild harvest (the
  /// corpse loop is provably not running — one thread owns every domain).
  [[nodiscard]] ShardLedger collect() const {
    const E2Server::Stats& st = server_->stats();
    ShardLedger v;
    v.msgs_rx = st.msgs_rx;
    v.dispatched = st.dispatched;
    v.indications_rx = st.indications_rx;
    v.rate_shed = st.rate_shed;
    v.flood_shed = st.flood_shed;
    v.queue_shed = st.queue_shed;
    v.queued = server_->ingest_queued();
    v.agent_reported_sheds = st.agent_reported_sheds;
    v.fanout_shed = fanout_shed_;
    v.reply_shed = reply_shed_;
    v.dir_events_lost = events_lost_;
    v.orphan_indications = st.orphan_indications;
    v.frames = st.dispatched;
    return v;
  }

  /// Copy the shard's ledger into its cache-aligned board slot. Runs on the
  /// shard thread (timer); the board is the cross-thread-readable face. The
  /// epoch stamp keeps a retired incarnation off the replacement's slot.
  void publish() {
    board_.publish(shard_, collect(), epoch_);
    if (pending_resync_) try_resync();
  }

 private:
  /// Every directory event funnels through here so the ring's producer end
  /// has exactly one call site (the SPSC contract is structural, and the
  /// atomics-order pass counts sites).
  [[nodiscard]] bool push_event(DirEvent&& ev) {
    // @producer(shard-dir-events)
    return cell_.events->try_push(std::move(ev)).is_ok();
  }

  void push_upsert(const AgentInfo& info) {
    DirEvent ev;
    ev.kind = DirEvent::Kind::upsert;
    ev.info = info;
    if (!push_event(std::move(ev))) note_event_lost();
  }

  void note_event_lost() {
    events_lost_++;
    // Board update rides the next publish tick; home reacts by requesting
    // a snapshot resync, so a lossy spell degrades to a bounded staleness
    // window, never to silent divergence.
  }

  void try_resync() {
    DirEvent ev;
    ev.kind = DirEvent::Kind::snapshot;
    ev.agents = server_->ran_db().snapshot();
    if (push_event(std::move(ev))) pending_resync_ = false;
  }

  void maybe_subscribe_fanout(const AgentInfo& info) {
    if (!fanout_armed_) return;
    bool offers = false;
    for (const auto& f : info.functions)
      if (f.id == fanout_fn_) offers = true;
    if (!offers) return;
    SubCallbacks cbs;
    const AgentId local = info.id;
    cbs.on_response = [](const e2ap::SubscriptionResponse&) {};
    cbs.on_failure = [](const e2ap::SubscriptionFailure&) {};
    cbs.on_indication = [this, local](const e2ap::Indication& ind) {
      FanoutIndication fi;
      fi.shard = shard_;
      fi.agent = global_agent_id(shard_, local);
      fi.ind = ind;
      // @producer(shard-fanout)
      if (!cell_.fanout->try_push(std::move(fi)).is_ok()) fanout_shed_++;
    };
    (void)server_->subscribe(local, fanout_fn_, fanout_trigger_,
                             fanout_actions_, std::move(cbs));
  }

  std::uint32_t shard_;
  Cell& cell_;
  ShardCounterBoard& board_;
  std::uint64_t epoch_;
  Nanos publish_period_;
  bool fanout_armed_ = false;
  std::uint16_t fanout_fn_ = 0;
  Buffer fanout_trigger_;
  std::vector<e2ap::Action> fanout_actions_;
  std::uint64_t fanout_shed_ = 0;
  std::uint64_t reply_shed_ = 0;
  std::uint64_t events_lost_ = 0;
  bool pending_resync_ = false;
  // Guards the periodic publish timer: the shard reactor outlives its
  // servers during teardown, so the timer may fire after the Relay is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// ---------------------------------------------------------------------------
// ShardedE2Server
// ---------------------------------------------------------------------------

ShardedE2Server::ShardedE2Server(ShardPool& pool, ShardedConfig cfg)
    : pool_(pool),
      cfg_(std::move(cfg)),
      cells_(pool.size()),
      ports_(pool.size(), 0),
      board_(pool.size()),
      accepting_(pool.size(), 1),
      retired_ledgers_(pool.size()) {
  for (std::uint32_t i = 0; i < pool_.size(); ++i)
    build_cell(i, /*fresh_rings=*/true);
  if (cfg_.supervise.enabled && cfg_.supervise.heartbeat_period > 0)
    pool_.enable_heartbeat(cfg_.supervise.heartbeat_period);
  supervisor_ =
      std::make_unique<ShardSupervisor>(pool_, *this, cfg_.supervise);
}

ShardedE2Server::~ShardedE2Server() {
  // Cells of force-restarted threaded shards may still be visited by their
  // wedged (detached) loop thread: leak them deliberately, mirroring
  // ShardPool's retired reactors. The OS reclaims at process exit.
  for (auto& c : retired_cells_) (void)c.release();
}

void ShardedE2Server::build_cell(std::uint32_t i, bool fresh_rings) {
  if (fresh_rings || !cells_[i]) {
    auto cell = std::make_unique<Cell>();
    cell->events = std::make_unique<SpscRing<DirEvent>>(cfg_.event_ring);
    cell->fanout =
        std::make_unique<SpscRing<FanoutIndication>>(cfg_.fanout_ring);
    cell->replies = std::make_unique<SpscRing<QueryReply>>(cfg_.reply_ring);
    cells_[i] = std::move(cell);
  }
  Cell& cell = *cells_[i];
  E2Server::Config scfg = cfg_.server;
  scfg.shard = i;
  scfg.num_shards = pool_.size();
  cell.server = std::make_unique<E2Server>(pool_.reactor(i), scfg);
  cell.relay = std::make_shared<Relay>(i, cell, board_, cfg_.publish_period);
  if (fanout_armed_)
    cell.relay->set_fanout(fanout_fn_, fanout_trigger_, fanout_actions_);
  cell.server->add_iapp(cell.relay);
  for (const IAppFactory& f : factories_) cell.server->add_iapp(f(i));
}

Status ShardedE2Server::listen_all(std::uint16_t base_port) {
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    const std::uint16_t want =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + i);
    Status st = cells_[i]->server->listen(want);
    if (!st.is_ok()) return st;
    ports_[i] = cells_[i]->server->port();
  }
  return Status::ok();
}

void ShardedE2Server::add_iapp_factory(const IAppFactory& factory) {
  factories_.push_back(factory);
  for (std::uint32_t i = 0; i < num_shards(); ++i)
    cells_[i]->server->add_iapp(factory(i));
}

void ShardedE2Server::subscribe_fanout(std::uint16_t fn_id, Buffer trigger,
                                       std::vector<e2ap::Action> actions,
                                       FanoutHandler handler) {
  FLEXRIC_ASSERT_AFFINITY(home_);
  fanout_handler_ = std::move(handler);
  // Kept home-side too, so a rebuilt shard's replacement relay re-arms.
  fanout_armed_ = true;
  fanout_fn_ = fn_id;
  fanout_trigger_ = trigger;
  fanout_actions_ = actions;
  // Pre-start configuration: the shards' loops are not running yet (the
  // documented call order), so setting relay state directly is safe.
  for (auto& cell : cells_) cell->relay->set_fanout(fn_id, trigger, actions);
}

int ShardedE2Server::drain_events(std::uint32_t shard) {
  int handled = 0;
  DirEvent ev;
  // @consumer(shard-dir-events)
  while (cells_[shard]->events->try_pop(ev)) {
    apply_dir_event(shard, ev);
    handled++;
  }
  return handled;
}

int ShardedE2Server::drain_fanout(std::uint32_t shard, bool deliver) {
  int handled = 0;
  FanoutIndication fi;
  // @consumer(shard-fanout)
  while (cells_[shard]->fanout->try_pop(fi)) {
    if (deliver) {
      if (fanout_handler_) fanout_handler_(fi);
    } else {
      // Recovery drain: indications parked by a condemned incarnation are
      // shed with exact accounting, never delivered stale post-restart.
      supervisor_shed_++;
    }
    handled++;
  }
  return handled;
}

int ShardedE2Server::drain_replies(std::uint32_t shard, bool deliver) {
  int handled = 0;
  QueryReply qr;
  // @consumer(shard-replies)
  while (cells_[shard]->replies->try_pop(qr)) {
    auto it = pending_.find(qr.id);
    if (it != pending_.end()) {
      if (deliver) {
        QueryDone done = std::move(it->second.done);
        pending_.erase(it);
        if (done) done(Result<std::string>(std::move(qr.payload)));
      }
      // !deliver: leave the entry; containment fails it with a cause.
    }
    handled++;
  }
  return handled;
}

int ShardedE2Server::pump_home() {
  FLEXRIC_ASSERT_AFFINITY(home_);
  int handled = 0;
  // Fixed drain order — shard 0 first, directory before fan-out before
  // replies — is part of the deterministic scheduling contract (§13).
  for (std::uint32_t i = 0; i < num_shards(); ++i) handled += drain_events(i);
  for (std::uint32_t i = 0; i < num_shards(); ++i)
    handled += drain_fanout(i, /*deliver=*/true);
  for (std::uint32_t i = 0; i < num_shards(); ++i)
    handled += drain_replies(i, /*deliver=*/true);
  const std::uint64_t lost = global_ledger().dir_events_lost;
  if (lost > seen_events_lost_) request_resyncs();
  return handled;
}

void ShardedE2Server::apply_dir_event(std::uint32_t shard, DirEvent& ev) {
  switch (ev.kind) {
    case DirEvent::Kind::upsert: {
      AgentInfo g = std::move(ev.info);
      const e2ap::GlobalNodeId node = g.node;
      g.id = global_agent_id(shard, g.id);
      const bool formed = directory_.add_agent(g);
      if (formed && on_ran_formed_) {
        const RanEntity* e = directory_.entity(node.plmn, node.nb_id);
        if (e != nullptr) on_ran_formed_(*e);
      }
      break;
    }
    case DirEvent::Kind::remove:
      directory_.remove_agent(global_agent_id(shard, ev.id));
      break;
    case DirEvent::Kind::snapshot: {
      // Rebuild this shard's slice of the merged view from scratch: the
      // incremental stream was lossy (ring overflow) or the shard was
      // restarted; the snapshot is authoritative.
      resyncs_++;
      for (AgentId gid : directory_.agents())
        if (shard_of_global(gid) == shard) directory_.remove_agent(gid);
      for (AgentInfo& info : ev.agents) {
        const e2ap::GlobalNodeId node = info.node;
        info.id = global_agent_id(shard, info.id);
        const bool formed = directory_.add_agent(info);
        if (formed && on_ran_formed_) {
          const RanEntity* e = directory_.entity(node.plmn, node.nb_id);
          if (e != nullptr) on_ran_formed_(*e);
        }
      }
      break;
    }
  }
}

void ShardedE2Server::request_resyncs() {
  bool all_posted = true;
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    if (!accepting_[i]) continue;  // a quarantined shard resyncs on rebuild
    Relay* relay = cells_[i]->relay.get();
    if (!pool_.post(i, [relay] { relay->request_resync(); }).is_ok())
      all_posted = false;
  }
  // Only acknowledge the loss once every shard accepted the resync request;
  // a full injector ring just means we retry on the next pump.
  if (all_posted) seen_events_lost_ = global_ledger().dir_events_lost;
}

Status ShardedE2Server::query(std::uint32_t shard,
                              std::function<std::string(E2Server&)> job,
                              QueryDone done) {
  FLEXRIC_ASSERT_AFFINITY(home_);
  if (!accepting_[shard]) {
    queries_failed_++;
    return Status{Errc::rejected, "shard quarantined"};
  }
  const std::uint64_t id = ++next_query_id_;
  Cell* cell = cells_[shard].get();
  Status st =
      pool_.post(shard, [cell, id, job = std::move(job)] {
        QueryReply qr;
        qr.id = id;
        qr.payload = job(*cell->server);
        // @producer(shard-replies)
        if (!cell->replies->try_push(std::move(qr)).is_ok())
          cell->relay->note_reply_shed();
      });
  if (!st.is_ok()) return st;
  pending_.emplace(id, PendingQuery{shard, std::move(done)});
  return Status::ok();
}

void ShardedE2Server::fail_pending_queries(std::uint32_t shard) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.shard != shard) {
      ++it;
      continue;
    }
    QueryDone done = std::move(it->second.done);
    it = pending_.erase(it);
    queries_failed_++;
    // Transport-style cause: to the caller this is indistinguishable from
    // the connection to that shard being reset under the query.
    if (done)
      done(Result<std::string>(Errc::io,
                               "shard quarantined: connection reset"));
  }
}

void ShardedE2Server::contain_shard(std::uint32_t shard) {
  FLEXRIC_ASSERT_AFFINITY(home_);
  accepting_[shard] = 0;
  fail_pending_queries(shard);
}

void ShardedE2Server::rebuild_shard(std::uint32_t shard) {
  FLEXRIC_ASSERT_AFFINITY(home_);
  accepting_[shard] = 0;
  fail_pending_queries(shard);
  // Parked directory events are authoritative lifecycle facts: deliver
  // them before the slice is wiped. Parked fan-out indications belong to a
  // condemned incarnation: shed with exact accounting (supervisor_shed).
  // Parked replies answer queries containment already failed: drop.
  drain_events(shard);
  drain_fanout(shard, /*deliver=*/false);
  drain_replies(shard, /*deliver=*/false);
  // Harvest the corpse's ledger into the retired total so the global
  // ledger stays monotone across the restart. Manual mode reads the server
  // directly — exact, the loop is provably not running (one thread owns
  // every domain; the home_ guard above is that proof). Threaded mode
  // settles for the last published image, at most one publish period
  // stale.
  const bool manual = pool_.mode() == ShardPool::Mode::manual;
  ShardLedger harvest;
  if (manual && cells_[shard]->relay) {
    harvest = cells_[shard]->relay->collect();
  } else {
    harvest = board_.read(shard);
  }
  // Frames admitted but still queued die with the ingest queue: that loss
  // is supervision's doing, so it lands in supervisor_shed, keeping
  //   Σemitted == Σdelivered + Σagent_shed + Σserver_shed + Σsupervisor_shed
  // exact across the recovery.
  supervisor_shed_ += harvest.queued;
  harvest.queued = 0;
  retired_ledgers_[shard].add(harvest);
  // Retire the slot's writer incarnation before the teardown: a leaked
  // corpse loop that un-wedges later publishes into the void.
  board_.bump_epoch(shard);
  if (manual) {
    // Destroy the dead cell in place; the rings survive and are reseeded.
    cells_[shard]->server.reset();
    cells_[shard]->relay.reset();
    board_.publish(shard, ShardLedger{});
  } else {
    // A wedged loop thread may still be inside the cell: retire it whole
    // (leaked at destruction) and give the replacement fresh rings.
    retired_cells_.push_back(std::move(cells_[shard]));
  }
  pool_.restart_shard(shard);
  if (manual) {
    // Reseed the shard->home conduits for the replacement loop. This is
    // the one sanctioned reset_endpoints path — the analyzer's
    // atomics-order pass flags any caller without a @recovery annotation.
    cells_[shard]->events->reset_endpoints();   // @recovery
    cells_[shard]->fanout->reset_endpoints();   // @recovery
    cells_[shard]->replies->reset_endpoints();  // @recovery
  }
  build_cell(shard, /*fresh_rings=*/!manual);
  if (ports_[shard] != 0) {
    // Re-listen on the same shard port so re-homing agents dial the same
    // address. If the OS still holds it, fall back to an ephemeral port
    // rather than staying dark.
    Status st = cells_[shard]->server->listen(ports_[shard]);
    if (!st.is_ok()) {
      LOG_WARN("sharded", "shard %u: re-listen on port %u failed (%s)", shard,
               ports_[shard], st.to_string().c_str());
      (void)cells_[shard]->server->listen(0);
    }
    ports_[shard] = cells_[shard]->server->port();
  }
  // Wipe the stale slice of the merged directory now; the authoritative
  // snapshot resync from the replacement confirms (and repopulates as
  // agents re-home through the PR-3 reconnect machinery).
  for (AgentId gid : directory_.agents())
    if (shard_of_global(gid) == shard) directory_.remove_agent(gid);
  Relay* relay = cells_[shard]->relay.get();
  (void)pool_.post(shard, [relay] { relay->request_resync(); });
  accepting_[shard] = 1;
}

}  // namespace flexric::server
