#include "server/sharded_server.hpp"

#include "common/log.hpp"

namespace flexric::server {

// ---------------------------------------------------------------------------
// Relay: the per-shard half of every cross-shard path
// ---------------------------------------------------------------------------

// One Relay runs inside each shard's E2Server as an ordinary iApp, entirely
// on that shard's reactor thread; its only outputs are ring pushes and
// counter-board publishes. Everything it owns is shard-affine.
// @affine(shard)
class ShardedE2Server::Relay final : public IApp {
 public:
  Relay(std::uint32_t shard, Cell& cell, ShardCounterBoard& board,
        Nanos publish_period)
      : shard_(shard),
        cell_(cell),
        board_(board),
        publish_period_(publish_period) {}

  ~Relay() override { *alive_ = false; }

  [[nodiscard]] const char* name() const override { return "shard-relay"; }

  void on_start(E2Server& server) override {
    IApp::on_start(server);
    server.reactor().add_timer(
        publish_period_,
        [this, alive = std::weak_ptr<bool>(alive_)] {
          auto a = alive.lock();
          if (!a || !*a) return;
          publish();
        },
        /*periodic=*/true);
  }

  void on_agent_connected(const AgentInfo& info) override {
    push_upsert(info);
    maybe_subscribe_fanout(info);
  }
  void on_agent_updated(const AgentInfo& info) override { push_upsert(info); }
  void on_agent_reconnected(const AgentInfo& info) override {
    // Re-establishment keeps the AgentId and replays subscriptions
    // transparently (server.cpp), so the fan-out subscription survives; the
    // directory only needs the refreshed info.
    push_upsert(info);
  }
  void on_agent_disconnected(AgentId id) override {
    DirEvent ev;
    ev.kind = DirEvent::Kind::remove;
    ev.id = id;
    if (!push_event(std::move(ev))) note_event_lost();
  }

  /// Arm cross-shard fan-out (home thread, before agents connect).
  void set_fanout(std::uint16_t fn_id, Buffer trigger,
                  std::vector<e2ap::Action> actions) {
    fanout_fn_ = fn_id;
    fanout_trigger_ = std::move(trigger);
    fanout_actions_ = std::move(actions);
    fanout_armed_ = true;
  }

  /// Home lost directory events (ring overflow): ship a full snapshot.
  /// Retried from the publish timer until the ring accepts it.
  void request_resync() {
    pending_resync_ = true;
    try_resync();
  }

  void note_reply_shed() { reply_shed_++; }

  /// Copy the shard's ledger into its cache-aligned board slot. Runs on the
  /// shard thread (timer); the board is the cross-thread-readable face.
  void publish() {
    const E2Server::Stats& st = server_->stats();
    ShardLedger v;
    v.msgs_rx = st.msgs_rx;
    v.dispatched = st.dispatched;
    v.indications_rx = st.indications_rx;
    v.rate_shed = st.rate_shed;
    v.flood_shed = st.flood_shed;
    v.queue_shed = st.queue_shed;
    v.queued = server_->ingest_queued();
    v.agent_reported_sheds = st.agent_reported_sheds;
    v.fanout_shed = fanout_shed_;
    v.reply_shed = reply_shed_;
    v.dir_events_lost = events_lost_;
    v.frames = st.dispatched;
    board_.publish(shard_, v);
    if (pending_resync_) try_resync();
  }

 private:
  /// Every directory event funnels through here so the ring's producer end
  /// has exactly one call site (the SPSC contract is structural, and the
  /// atomics-order pass counts sites).
  [[nodiscard]] bool push_event(DirEvent&& ev) {
    // @producer(shard-dir-events)
    return cell_.events->try_push(std::move(ev)).is_ok();
  }

  void push_upsert(const AgentInfo& info) {
    DirEvent ev;
    ev.kind = DirEvent::Kind::upsert;
    ev.info = info;
    if (!push_event(std::move(ev))) note_event_lost();
  }

  void note_event_lost() {
    events_lost_++;
    // Board update rides the next publish tick; home reacts by requesting
    // a snapshot resync, so a lossy spell degrades to a bounded staleness
    // window, never to silent divergence.
  }

  void try_resync() {
    DirEvent ev;
    ev.kind = DirEvent::Kind::snapshot;
    ev.agents = server_->ran_db().snapshot();
    if (push_event(std::move(ev))) pending_resync_ = false;
  }

  void maybe_subscribe_fanout(const AgentInfo& info) {
    if (!fanout_armed_) return;
    bool offers = false;
    for (const auto& f : info.functions)
      if (f.id == fanout_fn_) offers = true;
    if (!offers) return;
    SubCallbacks cbs;
    const AgentId local = info.id;
    cbs.on_response = [](const e2ap::SubscriptionResponse&) {};
    cbs.on_failure = [](const e2ap::SubscriptionFailure&) {};
    cbs.on_indication = [this, local](const e2ap::Indication& ind) {
      FanoutIndication fi;
      fi.shard = shard_;
      fi.agent = global_agent_id(shard_, local);
      fi.ind = ind;
      // @producer(shard-fanout)
      if (!cell_.fanout->try_push(std::move(fi)).is_ok()) fanout_shed_++;
    };
    (void)server_->subscribe(local, fanout_fn_, fanout_trigger_,
                             fanout_actions_, std::move(cbs));
  }

  std::uint32_t shard_;
  Cell& cell_;
  ShardCounterBoard& board_;
  Nanos publish_period_;
  bool fanout_armed_ = false;
  std::uint16_t fanout_fn_ = 0;
  Buffer fanout_trigger_;
  std::vector<e2ap::Action> fanout_actions_;
  std::uint64_t fanout_shed_ = 0;
  std::uint64_t reply_shed_ = 0;
  std::uint64_t events_lost_ = 0;
  bool pending_resync_ = false;
  // Guards the periodic publish timer: the shard reactor outlives its
  // servers during teardown, so the timer may fire after the Relay is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// ---------------------------------------------------------------------------
// ShardedE2Server
// ---------------------------------------------------------------------------

ShardedE2Server::ShardedE2Server(ShardPool& pool, ShardedConfig cfg)
    : pool_(pool),
      cfg_(std::move(cfg)),
      ports_(pool.size(), 0),
      board_(pool.size()) {
  cells_.reserve(pool_.size());
  for (std::uint32_t i = 0; i < pool_.size(); ++i) {
    auto cell = std::make_unique<Cell>();
    cell->events = std::make_unique<SpscRing<DirEvent>>(cfg_.event_ring);
    cell->fanout =
        std::make_unique<SpscRing<FanoutIndication>>(cfg_.fanout_ring);
    cell->replies =
        std::make_unique<SpscRing<std::function<void()>>>(cfg_.reply_ring);
    E2Server::Config scfg = cfg_.server;
    scfg.shard = i;
    scfg.num_shards = pool_.size();
    cell->server = std::make_unique<E2Server>(pool_.reactor(i), scfg);
    cell->relay =
        std::make_shared<Relay>(i, *cell, board_, cfg_.publish_period);
    cell->server->add_iapp(cell->relay);
    cells_.push_back(std::move(cell));
  }
}

ShardedE2Server::~ShardedE2Server() = default;

Status ShardedE2Server::listen_all(std::uint16_t base_port) {
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    const std::uint16_t want =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + i);
    Status st = cells_[i]->server->listen(want);
    if (!st.is_ok()) return st;
    ports_[i] = cells_[i]->server->port();
  }
  return Status::ok();
}

void ShardedE2Server::add_iapp_factory(const IAppFactory& factory) {
  for (std::uint32_t i = 0; i < num_shards(); ++i)
    cells_[i]->server->add_iapp(factory(i));
}

void ShardedE2Server::subscribe_fanout(std::uint16_t fn_id, Buffer trigger,
                                       std::vector<e2ap::Action> actions,
                                       FanoutHandler handler) {
  FLEXRIC_ASSERT_AFFINITY(home_);
  fanout_handler_ = std::move(handler);
  // Pre-start configuration: the shards' loops are not running yet (the
  // documented call order), so setting relay state directly is safe.
  for (auto& cell : cells_) cell->relay->set_fanout(fn_id, trigger, actions);
}

int ShardedE2Server::pump_home() {
  FLEXRIC_ASSERT_AFFINITY(home_);
  int handled = 0;
  // Fixed drain order — shard 0 first, directory before fan-out before
  // replies — is part of the deterministic scheduling contract (§13).
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    DirEvent ev;
    // @consumer(shard-dir-events)
    while (cells_[i]->events->try_pop(ev)) {
      apply_dir_event(i, ev);
      handled++;
    }
  }
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    FanoutIndication fi;
    // @consumer(shard-fanout)
    while (cells_[i]->fanout->try_pop(fi)) {
      if (fanout_handler_) fanout_handler_(fi);
      handled++;
    }
  }
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    std::function<void()> reply;
    // @consumer(shard-replies)
    while (cells_[i]->replies->try_pop(reply)) {
      reply();
      handled++;
    }
  }
  const std::uint64_t lost = board_.sum().dir_events_lost;
  if (lost > seen_events_lost_) request_resyncs();
  return handled;
}

void ShardedE2Server::apply_dir_event(std::uint32_t shard, DirEvent& ev) {
  switch (ev.kind) {
    case DirEvent::Kind::upsert: {
      AgentInfo g = std::move(ev.info);
      const e2ap::GlobalNodeId node = g.node;
      g.id = global_agent_id(shard, g.id);
      const bool formed = directory_.add_agent(g);
      if (formed && on_ran_formed_) {
        const RanEntity* e = directory_.entity(node.plmn, node.nb_id);
        if (e != nullptr) on_ran_formed_(*e);
      }
      break;
    }
    case DirEvent::Kind::remove:
      directory_.remove_agent(global_agent_id(shard, ev.id));
      break;
    case DirEvent::Kind::snapshot: {
      // Rebuild this shard's slice of the merged view from scratch: the
      // incremental stream was lossy (ring overflow), the snapshot is
      // authoritative.
      resyncs_++;
      for (AgentId gid : directory_.agents())
        if (shard_of_global(gid) == shard) directory_.remove_agent(gid);
      for (AgentInfo& info : ev.agents) {
        const e2ap::GlobalNodeId node = info.node;
        info.id = global_agent_id(shard, info.id);
        const bool formed = directory_.add_agent(info);
        if (formed && on_ran_formed_) {
          const RanEntity* e = directory_.entity(node.plmn, node.nb_id);
          if (e != nullptr) on_ran_formed_(*e);
        }
      }
      break;
    }
  }
}

void ShardedE2Server::request_resyncs() {
  bool all_posted = true;
  for (std::uint32_t i = 0; i < num_shards(); ++i) {
    Relay* relay = cells_[i]->relay.get();
    if (!pool_.post(i, [relay] { relay->request_resync(); }).is_ok())
      all_posted = false;
  }
  // Only acknowledge the loss once every shard accepted the resync request;
  // a full injector ring just means we retry on the next pump.
  if (all_posted) seen_events_lost_ = board_.sum().dir_events_lost;
}

Status ShardedE2Server::query(std::uint32_t shard,
                              std::function<std::string(E2Server&)> job,
                              std::function<void(std::string)> done) {
  FLEXRIC_ASSERT_AFFINITY(home_);
  Cell* cell = cells_[shard].get();
  return pool_.post(
      shard, [cell, job = std::move(job), done = std::move(done)] {
        std::string result = job(*cell->server);
        // @producer(shard-replies)
        Status st = cell->replies->try_push(
            [done, result = std::move(result)]() mutable {
              done(std::move(result));
            });
        if (!st.is_ok()) cell->relay->note_reply_shed();
      });
}

}  // namespace flexric::server
