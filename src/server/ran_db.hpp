// RAN database (paper §4.2.2).
//
// Stores what the RAN management learns from agent connections and answers
// queries about the composition of the RAN. Handles disaggregated
// deployments: agents that belong to the same base station (same PLMN and
// nb_id — e.g. a CU agent and a DU agent) are merged into one RAN entity,
// and an event fires when a complete RAN is formed from its parts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "e2ap/messages.hpp"

namespace flexric::server {

using AgentId = std::uint32_t;

/// What the server knows about one connected agent.
struct AgentInfo {
  AgentId id = 0;
  e2ap::GlobalNodeId node;
  std::vector<e2ap::RanFunctionItem> functions;
  bool connected = false;
};

/// One logical base station, possibly assembled from CU + DU agents.
struct RanEntity {
  std::uint32_t plmn = 0;
  std::uint32_t nb_id = 0;
  std::optional<AgentId> monolithic;  ///< eNB/gNB agent
  std::optional<AgentId> cu;
  std::optional<AgentId> du;
  /// Complete = a monolithic node, or both CU and DU present.
  [[nodiscard]] bool complete() const noexcept {
    return monolithic.has_value() || (cu.has_value() && du.has_value());
  }
  [[nodiscard]] std::vector<AgentId> agents() const {
    std::vector<AgentId> out;
    if (monolithic) out.push_back(*monolithic);
    if (cu) out.push_back(*cu);
    if (du) out.push_back(*du);
    return out;
  }
};

class RanDb {
 public:
  /// Record a connected agent; returns true if this completed a RAN entity.
  bool add_agent(const AgentInfo& info);
  void remove_agent(AgentId id);

  [[nodiscard]] const AgentInfo* agent(AgentId id) const;
  [[nodiscard]] std::vector<AgentId> agents() const;
  /// Full copy of every AgentInfo — the resync payload of the sharded
  /// directory (DESIGN.md §13): when a shard's event ring overflowed, the
  /// home thread rebuilds that shard's slice of the merged view from this
  /// snapshot instead of trusting the lossy incremental stream.
  [[nodiscard]] std::vector<AgentInfo> snapshot() const;
  [[nodiscard]] std::size_t num_agents() const noexcept {
    return agents_.size();
  }

  /// RAN entity lookup by (plmn, nb_id).
  [[nodiscard]] const RanEntity* entity(std::uint32_t plmn,
                                        std::uint32_t nb_id) const;
  [[nodiscard]] std::vector<const RanEntity*> entities() const;

  /// Agents of `entity-or-all` offering RAN function `fn_id`.
  [[nodiscard]] std::vector<AgentId> agents_with_function(
      std::uint16_t fn_id) const;

 private:
  static std::uint64_t entity_key(std::uint32_t plmn, std::uint32_t nb_id) {
    return (static_cast<std::uint64_t>(plmn) << 32) | nb_id;
  }
  std::map<AgentId, AgentInfo> agents_;
  std::map<std::uint64_t, RanEntity> entities_;
};

}  // namespace flexric::server
