#include "common/log.hpp"

// lint: allow(thread-primitives) log level is a relaxed flag readable from any thread
#include <atomic>

namespace flexric {

namespace {
// lint: allow(thread-primitives) single word, no ordering dependencies
std::atomic<LogLevel> g_level{LogLevel::warn};
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel lvl) noexcept { g_level.store(lvl); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_write(LogLevel lvl, const char* component, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] %s: ", level_name(lvl), component);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace flexric
