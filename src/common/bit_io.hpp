// Bit-level I/O used by the ASN.1-PER-style codec.
//
// PER packs constrained integers into the minimal number of bits, so the
// codec needs sub-byte addressing. Writers pad to a byte boundary only when
// explicitly asked (aligned-PER alignment points).
//
// The reader side consumes wire data and therefore never aborts: every
// malformed request (width > 64, unaligned byte read, read past end) is
// reported as a recoverable Result/Status error. Writer-side width/alignment
// misuse is a programming error on locally produced data and still asserts.
#pragma once

#include <cstdint>

#include "common/buffer.hpp"
#include "common/result.hpp"

namespace flexric {

/// Mask selecting the low `nbits` bits; well-defined for the whole [0, 64]
/// range (shifting a uint64_t by 64 is UB, so both boundaries are special-
/// cased here instead of at every call site).
[[nodiscard]] constexpr std::uint64_t low_bits_mask(unsigned nbits) noexcept {
  if (nbits == 0) return 0;
  if (nbits >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << nbits) - 1;
}

/// MSB-first bit writer appending to an owned Buffer.
class BitWriter {
 public:
  /// Write the low `nbits` bits of v, MSB first. nbits in [0, 64];
  /// nbits == 0 writes nothing. Wider requests assert (encode-side
  /// precondition on local data).
  void bits(std::uint64_t v, unsigned nbits);
  /// Write a single bit.
  void bit(bool b) { bits(b ? 1 : 0, 1); }
  /// Pad with zero bits to the next byte boundary (aligned-PER alignment).
  void align();
  /// Append whole bytes. Requires byte alignment; returns an error Status
  /// (and writes nothing) otherwise.
  [[nodiscard]] Status bytes(BytesView b);

  [[nodiscard]] std::size_t bit_size() const noexcept {
    return buf_.size() * 8 - (bitpos_ ? 8 - bitpos_ : 0);
  }
  [[nodiscard]] bool aligned() const noexcept { return bitpos_ == 0; }
  /// Finish: pads to byte boundary and returns the buffer.
  Buffer take();

 private:
  Buffer buf_;
  unsigned bitpos_ = 0;  // bits already used in the last byte (0 == aligned)
};

/// MSB-first bit reader over a byte view. All failure modes — including
/// decoder-requested widths outside [0, 64] — are recoverable errors, never
/// aborts: the requests may be derived from untrusted wire data.
// @view_of(the byte view passed to the constructor)
class BitReader {
 public:
  explicit BitReader(BytesView b) : data_(b) {}

  /// Read `nbits` bits MSB-first into the low bits of the result.
  /// nbits == 0 reads nothing and yields 0; nbits > 64 is out_of_range.
  Result<std::uint64_t> bits(unsigned nbits);
  Result<bool> bit();
  /// Skip to the next byte boundary.
  void align();
  /// Read whole bytes. Requires byte alignment; fails with malformed
  /// otherwise (no abort).
  Result<BytesView> bytes(std::size_t n);

  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return data_.size() * 8 - bitpos_;
  }
  [[nodiscard]] bool aligned() const noexcept { return bitpos_ % 8 == 0; }

 private:
  BytesView data_;
  std::size_t bitpos_ = 0;  // absolute bit position
};

/// Number of bits needed to represent values in [0, range-1]; 0 for range<=1.
unsigned bits_for_range(std::uint64_t range) noexcept;

}  // namespace flexric
