// Bit-level I/O used by the ASN.1-PER-style codec.
//
// PER packs constrained integers into the minimal number of bits, so the
// codec needs sub-byte addressing. Writers pad to a byte boundary only when
// explicitly asked (aligned-PER alignment points).
#pragma once

#include <cstdint>

#include "common/buffer.hpp"
#include "common/result.hpp"

namespace flexric {

/// MSB-first bit writer appending to an owned Buffer.
class BitWriter {
 public:
  /// Write the low `nbits` bits of v, MSB first. nbits in [0, 64].
  void bits(std::uint64_t v, unsigned nbits);
  /// Write a single bit.
  void bit(bool b) { bits(b ? 1 : 0, 1); }
  /// Pad with zero bits to the next byte boundary (aligned-PER alignment).
  void align();
  /// Append whole bytes (requires byte alignment; asserts otherwise).
  void bytes(BytesView b);

  [[nodiscard]] std::size_t bit_size() const noexcept {
    return buf_.size() * 8 - (bitpos_ ? 8 - bitpos_ : 0);
  }
  [[nodiscard]] bool aligned() const noexcept { return bitpos_ == 0; }
  /// Finish: pads to byte boundary and returns the buffer.
  Buffer take();

 private:
  Buffer buf_;
  unsigned bitpos_ = 0;  // bits already used in the last byte (0 == aligned)
};

/// MSB-first bit reader over a byte view.
class BitReader {
 public:
  explicit BitReader(BytesView b) : data_(b) {}

  /// Read `nbits` bits MSB-first into the low bits of the result.
  Result<std::uint64_t> bits(unsigned nbits);
  Result<bool> bit();
  /// Skip to the next byte boundary.
  void align();
  /// Read whole bytes (requires byte alignment; asserts otherwise).
  Result<BytesView> bytes(std::size_t n);

  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return data_.size() * 8 - bitpos_;
  }
  [[nodiscard]] bool aligned() const noexcept { return bitpos_ % 8 == 0; }

 private:
  BytesView data_;
  std::size_t bitpos_ = 0;  // absolute bit position
};

/// Number of bits needed to represent values in [0, range-1]; 0 for range<=1.
unsigned bits_for_range(std::uint64_t range) noexcept;

}  // namespace flexric
