// Minimal leveled logging. Disabled below the compile/runtime threshold with
// negligible cost (zero-overhead principle: monitoring is not on the hot path
// unless asked for).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace flexric {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

/// Global runtime log threshold (default: warn, keeps benches quiet).
void set_log_level(LogLevel lvl) noexcept;
LogLevel log_level() noexcept;

/// printf-style log entry; no-op when below the threshold.
void log_write(LogLevel lvl, const char* component, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

#define FLEXRIC_LOG(lvl, comp, ...)                           \
  do {                                                        \
    if (static_cast<int>(lvl) >=                              \
        static_cast<int>(::flexric::log_level()))             \
      ::flexric::log_write((lvl), (comp), __VA_ARGS__);       \
  } while (0)

#define LOG_TRACE(comp, ...) FLEXRIC_LOG(::flexric::LogLevel::trace, comp, __VA_ARGS__)
#define LOG_DEBUG(comp, ...) FLEXRIC_LOG(::flexric::LogLevel::debug, comp, __VA_ARGS__)
#define LOG_INFO(comp, ...) FLEXRIC_LOG(::flexric::LogLevel::info, comp, __VA_ARGS__)
#define LOG_WARN(comp, ...) FLEXRIC_LOG(::flexric::LogLevel::warn, comp, __VA_ARGS__)
#define LOG_ERROR(comp, ...) FLEXRIC_LOG(::flexric::LogLevel::error, comp, __VA_ARGS__)

}  // namespace flexric
