#include "common/bit_io.hpp"

namespace flexric {

void BitWriter::bits(std::uint64_t v, unsigned nbits) {
  FLEXRIC_ASSERT(nbits <= 64, "nbits > 64");
  v &= low_bits_mask(nbits);
  while (nbits > 0) {
    if (bitpos_ == 0) buf_.push_back(0);
    unsigned room = 8 - bitpos_;
    unsigned take = nbits < room ? nbits : room;
    // take the top `take` bits of the remaining value; take <= 8, and
    // nbits - take < 64, so both shifts below are well-defined
    std::uint64_t chunk = (v >> (nbits - take)) & low_bits_mask(take);
    buf_.back() = static_cast<std::uint8_t>(
        buf_.back() | (chunk << (room - take)));
    bitpos_ = (bitpos_ + take) % 8;
    nbits -= take;
  }
}

void BitWriter::align() { bitpos_ = 0; }

Status BitWriter::bytes(BytesView b) {
  if (bitpos_ != 0)
    return {Errc::malformed, "bit writer: bytes() while unaligned"};
  buf_.insert(buf_.end(), b.begin(), b.end());
  return Status::ok();
}

Buffer BitWriter::take() {
  bitpos_ = 0;
  return std::move(buf_);
}

Result<std::uint64_t> BitReader::bits(unsigned nbits) {
  if (nbits > 64)
    return Error{Errc::out_of_range, "bit read wider than 64 bits"};
  if (bits_remaining() < nbits)
    return Error{Errc::truncated, "bit read past end"};
  std::uint64_t v = 0;
  unsigned left = nbits;
  while (left > 0) {
    std::size_t byte = bitpos_ / 8;
    unsigned off = static_cast<unsigned>(bitpos_ % 8);
    unsigned room = 8 - off;
    unsigned take = left < room ? left : room;
    std::uint8_t cur = data_[byte];
    // take <= 8, so the shifts below never reach the 64-bit UB boundary
    std::uint64_t chunk = (cur >> (room - take)) & low_bits_mask(take);
    v = (v << take) | chunk;
    bitpos_ += take;
    left -= take;
  }
  return v;
}

Result<bool> BitReader::bit() {
  auto r = bits(1);
  if (!r) return r.error();
  return *r != 0;
}

void BitReader::align() {
  if (bitpos_ % 8 != 0) bitpos_ += 8 - (bitpos_ % 8);
}

Result<BytesView> BitReader::bytes(std::size_t n) {
  if (!aligned())
    return Error{Errc::malformed, "bit reader: bytes() while unaligned"};
  std::size_t byte = bitpos_ / 8;
  if (byte + n > data_.size()) return Error{Errc::truncated, "bytes past end"};
  bitpos_ += n * 8;
  return data_.subspan(byte, n);
}

unsigned bits_for_range(std::uint64_t range) noexcept {
  if (range <= 1) return 0;
  unsigned n = 0;
  std::uint64_t max = range - 1;
  while (max > 0) {
    ++n;
    max >>= 1;
  }
  return n;
}

}  // namespace flexric
