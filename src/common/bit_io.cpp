#include "common/bit_io.hpp"

namespace flexric {

void BitWriter::bits(std::uint64_t v, unsigned nbits) {
  FLEXRIC_ASSERT(nbits <= 64, "nbits > 64");
  if (nbits < 64) v &= (nbits == 0) ? 0 : ((std::uint64_t{1} << nbits) - 1);
  while (nbits > 0) {
    if (bitpos_ == 0) buf_.push_back(0);
    unsigned room = 8 - bitpos_;
    unsigned take = nbits < room ? nbits : room;
    // take the top `take` bits of the remaining value
    std::uint64_t chunk = (take == 64) ? v : (v >> (nbits - take));
    chunk &= (take == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << take) - 1);
    buf_.back() = static_cast<std::uint8_t>(
        buf_.back() | (chunk << (room - take)));
    bitpos_ = (bitpos_ + take) % 8;
    nbits -= take;
  }
}

void BitWriter::align() { bitpos_ = 0; }

void BitWriter::bytes(BytesView b) {
  FLEXRIC_ASSERT(bitpos_ == 0, "bytes() requires alignment");
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Buffer BitWriter::take() {
  bitpos_ = 0;
  return std::move(buf_);
}

Result<std::uint64_t> BitReader::bits(unsigned nbits) {
  FLEXRIC_ASSERT(nbits <= 64, "nbits > 64");
  if (bits_remaining() < nbits)
    return Error{Errc::truncated, "bit read past end"};
  std::uint64_t v = 0;
  unsigned left = nbits;
  while (left > 0) {
    std::size_t byte = bitpos_ / 8;
    unsigned off = static_cast<unsigned>(bitpos_ % 8);
    unsigned room = 8 - off;
    unsigned take = left < room ? left : room;
    std::uint8_t cur = data_[byte];
    std::uint64_t chunk = (cur >> (room - take)) & ((1u << take) - 1);
    v = (take == 64) ? chunk : ((v << take) | chunk);
    bitpos_ += take;
    left -= take;
  }
  return v;
}

Result<bool> BitReader::bit() {
  auto r = bits(1);
  if (!r) return r.error();
  return *r != 0;
}

void BitReader::align() {
  if (bitpos_ % 8 != 0) bitpos_ += 8 - (bitpos_ % 8);
}

Result<BytesView> BitReader::bytes(std::size_t n) {
  FLEXRIC_ASSERT(aligned(), "bytes() requires alignment");
  std::size_t byte = bitpos_ / 8;
  if (byte + n > data_.size()) return Error{Errc::truncated, "bytes past end"};
  bitpos_ += n * 8;
  return data_.subspan(byte, n);
}

unsigned bits_for_range(std::uint64_t range) noexcept {
  if (range <= 1) return 0;
  unsigned n = 0;
  std::uint64_t max = range - 1;
  while (max > 0) {
    ++n;
    max >>= 1;
  }
  return n;
}

}  // namespace flexric
