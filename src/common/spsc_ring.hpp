// Bounded single-producer/single-consumer ring — the only cross-shard
// conduit in the sharded RIC (DESIGN.md §13).
//
// The sharded server runs one Reactor per shard (§4.4's single-threaded
// universe, N times over). Shards never share mutable state on the hot
// path; everything that must cross a shard boundary — RAN-DB merge events,
// xApp fan-out indications, northbound query replies — travels through one
// of these rings, each with exactly one producing shard and one consuming
// thread. That pairing is what makes a lock-free ring correct with nothing
// stronger than acquire/release on two indices.
//
// Contract (mirrored by the ring's unit + TSan hammer tests):
//  * bounded: capacity is fixed at construction (rounded up to a power of
//    two); a full ring surfaces Errc::capacity from try_push — it never
//    blocks and never drops silently. Backpressure is the caller's problem,
//    counted in the caller's ledger, exactly like BoundedQueue (§11).
//  * FIFO: pops observe pushes in order.
//  * SPSC only: one thread calls try_push, one thread calls try_pop. The
//    analyzer treats SpscRing fields as @cross_domain conduits, and the
//    runtime guards in ShardPool keep each end on its own thread.
//
// This header is one of the sanctioned uses of <atomic> outside
// src/transport/ (tools/lint.py THREAD_OK_FILES): a cross-thread conduit
// cannot exist without the two index atomics, and confining it here keeps
// the rest of src/ lock- and atomic-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/affinity.hpp"
#include "common/result.hpp"

namespace flexric {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2) so the
  /// index wrap is a mask, not a modulo.
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Full ring => Errc::capacity, the element is untouched
  /// and `rejected()` is incremented — the push is never silently lost.
  /// The first calling thread becomes THE producer; in guarded builds a
  /// second pushing thread aborts (the SPSC contract is single-producer by
  /// construction, not by convention).
  // @hotpath
  Status try_push(T&& v) {
    if constexpr (kAffinityGuardsEnabled) {
      if (!producer_.check_or_bind())
        affinity_violation("SpscRing::try_push (second producer thread)",
                           producer_.domain(), __FILE__, __LINE__);
    }
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status{Errc::capacity, "spsc ring full"};
    }
    slots_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return Status::ok();
  }

  /// Consumer side. Returns false when the ring is empty. Symmetric guard:
  /// the first popping thread becomes THE consumer.
  // @hotpath
  bool try_pop(T& out) {
    if constexpr (kAffinityGuardsEnabled) {
      if (!consumer_.check_or_bind())
        affinity_violation("SpscRing::try_pop (second consumer thread)",
                           consumer_.domain(), __FILE__, __LINE__);
    }
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy; exact when called from either endpoint thread
  /// while the other is quiescent.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Pushes refused with Errc::capacity since construction; readable from
  /// any thread, so ring overflow is auditable in the global shed ledger.
  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Forget both endpoint bindings (teardown/test escape hatch); the next
  /// try_push / try_pop from any thread re-binds that end.
  void reset_endpoints() noexcept {
    producer_.reset();
    consumer_.reset();
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 1;
  /// Lazy endpoint stamps: each end binds to its first calling thread and
  /// aborts on a second one (guarded builds only — Release builds compile
  /// the checks out).
  DomainAffinity producer_{"spsc-producer"};
  DomainAffinity consumer_{"spsc-consumer"};
  /// Producer- and consumer-owned indices on separate cache lines so the
  /// two endpoint threads do not false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace flexric
