// Byte buffers and bounds-checked readers/writers.
//
// All wire codecs (PER, FLAT, PROTO) and the transport framing are built on
// these primitives. Readers never read past the end: every accessor returns a
// Result/Status instead of invoking UB, because the bytes come from the
// network (I.10, ES.103 of the Core Guidelines: don't trust external input).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace flexric {

/// Owned byte buffer. A thin alias: ownership is explicit, views use
/// std::span<const uint8_t>.
using Buffer = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Append-only writer over an owned Buffer. Grows as needed; all multi-byte
/// integers are written little-endian unless the _be variant is used.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void u16_be(std::uint16_t v) { append_be(v, 2); }
  void u32_be(std::uint32_t v) { append_be(v, 4); }

  /// Unsigned LEB128 (protobuf-style varint).
  void uvarint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  /// Zigzag-encoded signed varint.
  void svarint(std::int64_t v) {
    uvarint((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
  }

  void bytes(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }
  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  /// Length-prefixed (uvarint) byte string.
  void lp_bytes(BytesView b) {
    uvarint(b.size());
    bytes(b);
  }
  void lp_string(std::string_view s) {
    uvarint(s.size());
    bytes(s.data(), s.size());
  }

  /// Reserve n bytes at the current position, returns their offset; patch
  /// later with patch_u32 (used for size-prefix framing and FLAT vtables).
  std::size_t skip(std::size_t n) {
    std::size_t off = buf_.size();
    buf_.resize(buf_.size() + n, 0);
    return off;
  }
  void patch_u32(std::size_t off, std::uint32_t v) {
    FLEXRIC_ASSERT(off + 4 <= buf_.size(), "patch out of range");
    for (int i = 0; i < 4; ++i)
      buf_[off + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] BytesView view() const noexcept { return buf_; }
  Buffer take() { return std::move(buf_); }
  Buffer& buffer() noexcept { return buf_; }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void append_be(std::uint64_t v, int n) {
    for (int i = n - 1; i >= 0; --i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  Buffer buf_;
};

/// Bounds-checked sequential reader over a byte view. Never throws; every
/// read reports truncation via Result.
// @view_of(the byte view passed to the constructor)
class BufReader {
 public:
  explicit BufReader(BytesView b) : data_(b) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return err();
    return data_[pos_++];
  }
  Result<std::uint16_t> u16() { return read_le<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return read_le<std::uint64_t>(); }
  Result<std::int64_t> i64() {
    auto r = read_le<std::uint64_t>();
    if (!r) return r.error();
    return static_cast<std::int64_t>(*r);
  }
  Result<double> f64() {
    auto r = read_le<std::uint64_t>();
    if (!r) return r.error();
    double d;
    std::uint64_t bits = *r;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }
  Result<std::uint16_t> u16_be() {
    auto r = read_be(2);
    if (!r) return r.error();
    return static_cast<std::uint16_t>(*r);
  }
  Result<std::uint32_t> u32_be() {
    auto r = read_be(4);
    if (!r) return r.error();
    return static_cast<std::uint32_t>(*r);
  }

  Result<std::uint64_t> uvarint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (remaining() < 1) return err();
      if (shift >= 64) return Error{Errc::malformed, "varint too long"};
      std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }
  Result<std::int64_t> svarint() {
    auto r = uvarint();
    if (!r) return r.error();
    std::uint64_t u = *r;
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  /// View over the next n bytes (no copy).
  Result<BytesView> bytes(std::size_t n) {
    if (remaining() < n) return err();
    BytesView v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  /// uvarint length-prefixed byte string.
  Result<BytesView> lp_bytes() {
    auto n = uvarint();
    if (!n) return n.error();
    return bytes(static_cast<std::size_t>(*n));
  }
  Result<std::string> lp_string() {
    auto b = lp_bytes();
    if (!b) return b.error();
    return std::string(reinterpret_cast<const char*>(b->data()), b->size());
  }
  Status skip(std::size_t n) {
    if (remaining() < n) return {Errc::truncated, "skip past end"};
    pos_ += n;
    return Status::ok();
  }

 private:
  static Error err() { return {Errc::truncated, "read past end"}; }

  template <typename T>
  Result<T> read_le() {
    if (remaining() < sizeof(T)) return err();
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }
  Result<std::uint64_t> read_be(std::size_t n) {
    if (remaining() < n) return err();
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += n;
    return v;
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Hex dump helper for diagnostics/tests.
std::string to_hex(BytesView b);

}  // namespace flexric
