// Lightweight error handling for the FlexRIC SDK.
//
// The SDK is exception-free on the hot path (encode/decode, message dispatch):
// fallible operations return Result<T> / Status. Exceptions are reserved for
// programming errors (precondition violations) via FLEXRIC_ASSERT.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace flexric {

/// Error category for Status/Result. Kept as a small enum so dispatch code can
/// switch on it without string comparisons.
enum class Errc {
  ok = 0,
  truncated,        ///< input buffer ended before the value was complete
  malformed,        ///< structurally invalid wire data
  out_of_range,     ///< value outside its constrained range
  unsupported,      ///< message/version/codec not supported
  not_found,        ///< id lookup failed (subscription, ran function, ...)
  already_exists,   ///< duplicate registration
  rejected,         ///< admission control / peer rejected the request
  io,               ///< transport/system error
  capacity,         ///< resource limit hit (queue full, too many items)
};

/// Human-readable name of an error category.
const char* errc_name(Errc e) noexcept;

/// An error: category plus an optional context message.
struct Error {
  Errc code = Errc::ok;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    std::string s = errc_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

/// Status of a fallible operation without a payload. [[nodiscard]] at class
/// level: silently dropping an error is the bug class the analyzer's
/// nodiscard-status rule exists for; deliberate fire-and-forget call sites
/// must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(Errc code, std::string msg = {}) : err_{code, std::move(msg)} {}
  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return err_.code == Errc::ok; }
  explicit operator bool() const noexcept { return is_ok(); }
  [[nodiscard]] const Error& error() const noexcept { return err_; }
  [[nodiscard]] Errc code() const noexcept { return err_.code; }
  [[nodiscard]] std::string to_string() const {
    return is_ok() ? "ok" : err_.to_string();
  }

 private:
  Error err_{};
};

/// Result<T>: either a value or an Error. Minimal expected-like type: the SDK
/// targets toolchains without std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string msg = {}) : v_(Error{code, std::move(msg)}) {}

  [[nodiscard]] bool is_ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(v_));
  }
  [[nodiscard]] const Error& error() const {
    assert(!is_ok());
    return std::get<Error>(v_);
  }
  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return Status{error().code, error().message};
  }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> v_;
};

/// Abort with a message on violated precondition. Used for programming errors
/// only — never for wire data or peer behaviour.
#define FLEXRIC_ASSERT(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "FLEXRIC_ASSERT failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, (msg));                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Propagate an error Status from an expression returning Status.
#define FLEXRIC_TRY(expr)                 \
  do {                                    \
    ::flexric::Status st_ = (expr);       \
    if (!st_.is_ok()) return st_;         \
  } while (0)

}  // namespace flexric
