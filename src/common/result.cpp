#include "common/result.hpp"

namespace flexric {

const char* errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::truncated: return "truncated";
    case Errc::malformed: return "malformed";
    case Errc::out_of_range: return "out_of_range";
    case Errc::unsupported: return "unsupported";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::rejected: return "rejected";
    case Errc::io: return "io";
    case Errc::capacity: return "capacity";
  }
  return "unknown";
}

}  // namespace flexric
