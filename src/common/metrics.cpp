#include "common/metrics.hpp"

#include <cstdio>
#include <numeric>

namespace flexric {

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Histogram::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  // `!(q > 0)` also catches NaN, which would otherwise flow into the
  // size_t cast below (undefined behaviour).
  if (!(q > 0)) return samples_.front();
  if (q >= 1) return samples_.back();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

std::vector<std::pair<double, double>> Histogram::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    double frac = static_cast<double>(i + 1) / static_cast<double>(points);
    std::size_t idx = std::min(
        samples_.size() - 1,
        static_cast<std::size_t>(frac * static_cast<double>(samples_.size())));
    out.emplace_back(samples_[idx], frac);
  }
  return out;
}

std::string format_mbps(double mbps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f Mbps", mbps);
  return buf;
}

std::string format_micros(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f us", micros);
  return buf;
}

}  // namespace flexric
