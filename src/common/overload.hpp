// Overload-protection primitives: token-bucket admission, bounded two-class
// priority queueing, and pluggable load shedding with exact drop accounting.
//
// The paper's cost model (§5.2) shows indication load dominating agent and
// server cost; under a monitoring storm the SDK must keep control-plane
// transactions timely while shedding monitoring traffic *visibly* — every
// message offered to an overloaded component is either delivered or counted
// as shed, never silently dropped. DESIGN.md §11 describes the full model;
// these primitives are the shared vocabulary used by E2Server ingest,
// E2Agent egress, and the storm harness.
//
// Determinism contract: nothing here reads a clock. RateLimiter takes the
// caller's `Nanos now` (reactor time, virtual in tests), queues are plain
// data structures, and fair shedding breaks ties by lowest origin id — so a
// storm replayed under VirtualClock sheds the exact same messages.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/clock.hpp"
#include "common/metrics.hpp"

namespace flexric::overload {

/// Work classes for prioritized dispatch. CONTROL covers setup, subscription
/// and RIC control transactions (and anything unclassifiable, so protocol
/// errors still surface); DATA covers RIC indications. CONTROL is always
/// dispatched first.
enum class MsgClass : std::uint8_t { control = 0, data = 1 };

[[nodiscard]] const char* msg_class_name(MsgClass c) noexcept;

/// What to do when a bounded queue is full and one more message arrives.
enum class ShedPolicy : std::uint8_t {
  drop_newest = 0,  ///< reject the arriving message
  drop_oldest,      ///< evict the head (oldest) to admit the newcomer
  /// Evict the oldest message of the origin with the most queued messages
  /// (ties broken by lowest origin id), then admit the newcomer. One
  /// flooding origin cannot squeeze out lightly-loaded peers.
  fair_per_agent,
};

[[nodiscard]] const char* shed_policy_name(ShedPolicy p) noexcept;

/// Component key under which an agent reports shed counts to its controller
/// (piggybacked on a NodeConfigUpdate next to the heartbeat; payload is one
/// little-endian u64 delta). Shared so server and agent agree on the wire
/// vocabulary without a codec change.
inline constexpr const char* kShedReportComponent = "flexric.overload.shed";

/// Deterministic token bucket. Admission never blocks: admit() either debits
/// a token and returns true, or returns false (the caller sheds). The caller
/// supplies `now` from its reactor so virtual-clock replays are exact.
class RateLimiter {
 public:
  /// Unlimited: admit() always returns true.
  RateLimiter() = default;

  /// `rate_per_sec` tokens accrue per second up to `burst` (a burst of 0
  /// defaults to one second's worth). rate_per_sec <= 0 means unlimited.
  RateLimiter(double rate_per_sec, double burst);

  [[nodiscard]] bool unlimited() const noexcept { return rate_ <= 0.0; }

  /// Debit one token at time `now`; false = over rate, shed this message.
  [[nodiscard]] bool admit(Nanos now);

  /// Tokens available at `now` (observability / tests).
  [[nodiscard]] double tokens(Nanos now) const;

 private:
  double rate_ = 0.0;   // tokens per second; <= 0 disables limiting
  double burst_ = 0.0;  // bucket depth
  double tokens_ = 0.0;
  Nanos last_ = 0;
  bool primed_ = false;  // first admit() fills the bucket
};

/// Exact shed accounting for one bounded queue. Invariants (checked by
/// reconciles() and asserted by the storm harness):
///   offered  == admitted + shed_newest
///   admitted == delivered + shed_oldest + <currently queued>
/// i.e. sent = delivered + shed, with nothing unaccounted.
struct ShedStats {
  Counter offered;      ///< push() attempts
  Counter admitted;     ///< accepted into the queue
  Counter delivered;    ///< handed out via pop()
  Counter shed_newest;  ///< rejected at the door (drop_newest / capacity 0)
  Counter shed_oldest;  ///< evicted after admission (drop_oldest / fair)

  [[nodiscard]] std::uint64_t shed() const noexcept {
    return shed_newest.value + shed_oldest.value;
  }
  [[nodiscard]] bool reconciles(std::size_t queued) const noexcept {
    return offered.value == admitted.value + shed_newest.value &&
           admitted.value == delivered.value + shed_oldest.value + queued;
  }
};

/// Bounded FIFO for one message class. Every entry carries an `Origin`
/// (agent id, subscription instance, ...) so fair_per_agent can shed from
/// the heaviest origin. Not thread-safe: lives inside reactor-affine owners.
template <typename T>
class BoundedQueue {
 public:
  using Origin = std::uint32_t;

  struct Item {
    Origin origin;
    T value;
  };

  /// Default: capacity 0, i.e. every push is shed. Owners embed a default
  /// instance and configure() it once the real capacity is known.
  BoundedQueue() = default;
  BoundedQueue(std::size_t capacity, ShedPolicy policy)
      : cap_(capacity), policy_(policy) {}

  void configure(std::size_t capacity, ShedPolicy policy) {
    cap_ = capacity;
    policy_ = policy;
  }

  /// Offer one message. Returns true if the message itself was admitted
  /// (another message may have been evicted to make room — see stats()).
  bool push(Origin origin, T value) {
    stats_.offered.add();
    if (cap_ == 0) {
      stats_.shed_newest.add();
      return false;
    }
    if (q_.size() >= cap_ && !make_room(origin)) {
      stats_.shed_newest.add();
      return false;
    }
    q_.push_back(Item{origin, std::move(value)});
    depth_[origin]++;
    stats_.admitted.add();
    return true;
  }

  /// Oldest queued item, or nullptr when empty. pop() removes it.
  [[nodiscard]] const Item* front() const noexcept {
    return q_.empty() ? nullptr : &q_.front();
  }

  std::optional<Item> pop() {
    if (q_.empty()) return std::nullopt;
    Item it = std::move(q_.front());
    q_.pop_front();
    note_removed(it.origin);
    stats_.delivered.add();
    return it;
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] ShedPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const ShedStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t depth(Origin origin) const noexcept {
    auto it = depth_.find(origin);
    return it == depth_.end() ? 0 : it->second;
  }
  [[nodiscard]] bool reconciles() const noexcept {
    return stats_.reconciles(q_.size());
  }

 private:
  /// Evict per policy to admit a message from `incoming`. Returns false if
  /// the newcomer itself must be rejected (drop_newest).
  bool make_room(Origin incoming) {
    switch (policy_) {
      case ShedPolicy::drop_newest:
        return false;
      case ShedPolicy::drop_oldest:
        evict_oldest_of([](const Item&) { return true; });
        return true;
      case ShedPolicy::fair_per_agent: {
        // Heaviest origin sheds; lowest id wins ties so replays are exact.
        // When the newcomer's origin is itself the heaviest this degrades
        // to drop-oldest within that origin, which is the fair outcome.
        Origin victim = incoming;
        std::size_t worst = depth(incoming) + 1;  // +1: the arriving msg
        for (const auto& [origin, n] : depth_) {
          if (n > worst || (n == worst && origin < victim)) {
            victim = origin;
            worst = n;
          }
        }
        evict_oldest_of(
            [victim](const Item& it) { return it.origin == victim; });
        return true;
      }
    }
    return false;
  }

  template <typename Pred>
  void evict_oldest_of(Pred pred) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (!pred(*it)) continue;
      note_removed(it->origin);
      stats_.shed_oldest.add();
      q_.erase(it);
      return;
    }
    // Defensive: predicate matched nothing (cannot happen for the policies
    // above when the queue is non-empty) — fall back to the head.
    if (!q_.empty()) {
      note_removed(q_.front().origin);
      stats_.shed_oldest.add();
      q_.pop_front();
    }
  }

  void note_removed(Origin origin) {
    auto it = depth_.find(origin);
    if (it != depth_.end() && --it->second == 0) depth_.erase(it);
  }

  std::size_t cap_ = 0;
  ShedPolicy policy_ = ShedPolicy::drop_newest;
  std::deque<Item> q_;
  std::unordered_map<Origin, std::size_t> depth_;
  ShedStats stats_;
};

/// Two-class bounded queue: CONTROL drains strictly before DATA, each class
/// has its own capacity and both share one ShedPolicy. FIFO within a class.
template <typename T>
class PriorityQueue {
 public:
  using Origin = typename BoundedQueue<T>::Origin;

  struct Config {
    std::size_t control_capacity = 1024;
    std::size_t data_capacity = 4096;
    ShedPolicy policy = ShedPolicy::fair_per_agent;
  };

  struct Popped {
    MsgClass cls;
    Origin origin;
    T value;
  };

  PriorityQueue() = default;
  explicit PriorityQueue(const Config& cfg)
      : control_(cfg.control_capacity, cfg.policy),
        data_(cfg.data_capacity, cfg.policy) {}

  void configure(const Config& cfg) {
    control_.configure(cfg.control_capacity, cfg.policy);
    data_.configure(cfg.data_capacity, cfg.policy);
  }

  bool push(MsgClass cls, Origin origin, T value) {
    return queue(cls).push(origin, std::move(value));
  }

  std::optional<Popped> pop() {
    if (auto it = control_.pop())
      return Popped{MsgClass::control, it->origin, std::move(it->value)};
    if (auto it = data_.pop())
      return Popped{MsgClass::data, it->origin, std::move(it->value)};
    return std::nullopt;
  }

  [[nodiscard]] bool empty() const noexcept {
    return control_.empty() && data_.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return control_.size() + data_.size();
  }
  [[nodiscard]] const BoundedQueue<T>& queue(MsgClass cls) const noexcept {
    return cls == MsgClass::control ? control_ : data_;
  }
  [[nodiscard]] BoundedQueue<T>& queue(MsgClass cls) noexcept {
    return cls == MsgClass::control ? control_ : data_;
  }
  [[nodiscard]] std::uint64_t shed() const noexcept {
    return control_.stats().shed() + data_.stats().shed();
  }
  [[nodiscard]] bool reconciles() const noexcept {
    return control_.reconciles() && data_.reconciles();
  }

 private:
  BoundedQueue<T> control_;
  BoundedQueue<T> data_;
};

}  // namespace flexric::overload
