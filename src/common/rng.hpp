// Deterministic PRNG (xoshiro256**) for reproducible simulations.
//
// Every stochastic component (channel model, traffic sources, fuzz tests)
// takes an explicit seed so experiment runs are bit-reproducible.
#pragma once

#include <cstdint>

namespace flexric {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  std::uint64_t next() noexcept {
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's method.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return next() % bound;  // modulo bias negligible for simulation use
  }
  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace flexric
