#include "common/clock.hpp"

#include <cstdio>
#include <unistd.h>

namespace flexric {

namespace {
Nanos read_clock(clockid_t id) noexcept {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<Nanos>(ts.tv_sec) * kSecond + ts.tv_nsec;
}
}  // namespace

Nanos mono_now() noexcept { return read_clock(CLOCK_MONOTONIC); }
Nanos thread_cpu_now() noexcept { return read_clock(CLOCK_THREAD_CPUTIME_ID); }
Nanos process_cpu_now() noexcept {
  return read_clock(CLOCK_PROCESS_CPUTIME_ID);
}

std::uint64_t rss_bytes() noexcept {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long size = 0, resident = 0;
  int n = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

}  // namespace flexric
