// Runtime half of the affinity-domain contract (static half: tools/analyze).
//
// The SDK is event-driven by construction: "handlers run on the loop thread
// and the SDK holds no locks" (paper §4.4, DESIGN.md §10). That claim is an
// invariant the compiler never checks. DomainAffinity turns it into a
// machine-checked property: the Reactor stamps its owning thread on every
// entry to run()/run_once(), and the public entry points of the affine
// classes (E2Agent, E2Server, TelemetryStore, Broker, TcpTransport — all
// annotated `@affine(reactor)`) assert they are being called from that
// thread via FLEXRIC_ASSERT_AFFINITY.
//
// Domains are named so a binary that runs several loops (a sharded RIC, one
// reactor per shard) can tell WHICH single-threaded universe an object
// belongs to: each stamp carries its domain string ("reactor" by default)
// and a violation diagnostic names the domain that rejected the caller. The
// static analyzer mirrors the same vocabulary — `@affine(<domain>)` on a
// class makes its fields off-limits to code attributed to other domains.
//
// Cost model: with FLEXRIC_AFFINITY_GUARDS defined (default for Debug builds
// and every FLEXRIC_SANITIZE preset, see the top-level CMakeLists) a check is
// one relaxed atomic load plus a thread-id compare; without it the macro
// compiles to ((void)0) and the stamp writes are elided, so release builds
// pay nothing. The domain string is a pointer to a string literal — storing
// it costs one word and no allocation.
//
// This header is the one sanctioned use of thread primitives outside
// src/transport/: detecting a cross-thread call requires asking which thread
// we are on. tools/lint.py carries an explicit carve-out for this file.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

namespace flexric {

/// Owning-thread stamp for a single-threaded (domain-affine) object.
///
/// Two binding styles:
///  * Explicit — Reactor calls bind_to_current_thread() on every entry to
///    run()/run_once(), so ownership follows whoever pumps the loop and
///    handing the loop to a worker thread re-binds cleanly.
///  * Lazy — classes without a Reactor (TelemetryStore) let check_or_bind()
///    adopt the first calling thread as owner.
///
/// An unbound stamp accepts every thread: single-threaded setup code runs
/// before the loop starts, and the thread that starts the loop inherits
/// ownership at that point.
class DomainAffinity {
 public:
  /// `domain` must be a string with static storage duration (a literal);
  /// the stamp keeps the pointer, not a copy.
  explicit DomainAffinity(const char* domain = "reactor") noexcept
      : domain_(domain) {}

  [[nodiscard]] const char* domain() const noexcept { return domain_; }

  void bind_to_current_thread() noexcept {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  /// Forget the owner (teardown/test escape hatch); the next check_or_bind()
  /// or bind_to_current_thread() re-binds.
  void reset() noexcept {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

  [[nodiscard]] bool bound() const noexcept {
    return owner_.load(std::memory_order_relaxed) != std::thread::id{};
  }

  /// True iff unbound, or called from the owning thread.
  [[nodiscard]] bool on_owner_thread() const noexcept {
    std::thread::id o = owner_.load(std::memory_order_relaxed);
    return o == std::thread::id{} || o == std::this_thread::get_id();
  }

  /// Bind the first caller, then behave like on_owner_thread(). Returns
  /// false exactly when a *different* thread already owns the object.
  [[nodiscard]] bool check_or_bind() noexcept {
    std::thread::id expected{};
    const std::thread::id self = std::this_thread::get_id();
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed))
      return true;  // we just became the owner
    return expected == self;
  }

 private:
  const char* domain_;
  std::atomic<std::thread::id> owner_{};
};

/// The historical name: every current affine class lives in the default
/// "reactor" domain, and most call sites predate named domains.
using ReactorAffinity = DomainAffinity;

/// Abort with a diagnostic on an affinity violation. Kept out of the macro so
/// the fast path stays one compare + one predictable branch.
[[noreturn]] inline void affinity_violation(const char* what,
                                            const char* domain,
                                            const char* file,
                                            int line) noexcept {
  std::fprintf(stderr,
               "FLEXRIC_ASSERT_AFFINITY failed at %s:%d: %s called from "
               "thread %zu which does not own the '%s' domain\n",
               file, line, what,
               std::hash<std::thread::id>{}(std::this_thread::get_id()),
               domain);
  std::abort();
}

#if defined(FLEXRIC_AFFINITY_GUARDS)
inline constexpr bool kAffinityGuardsEnabled = true;
/// Assert the calling thread owns `aff` (a DomainAffinity&). First use from
/// an unbound stamp adopts the caller as owner.
#define FLEXRIC_ASSERT_AFFINITY(aff)                                       \
  do {                                                                     \
    if (!(aff).check_or_bind())                                            \
      ::flexric::affinity_violation(__func__, (aff).domain(), __FILE__,    \
                                    __LINE__);                             \
  } while (0)
#else
inline constexpr bool kAffinityGuardsEnabled = false;
#define FLEXRIC_ASSERT_AFFINITY(aff) ((void)0)
#endif

}  // namespace flexric
