#include "common/buffer.hpp"

namespace flexric {

std::string to_hex(BytesView b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (std::uint8_t c : b) {
    s.push_back(digits[c >> 4]);
    s.push_back(digits[c & 0xF]);
  }
  return s;
}

}  // namespace flexric
