// Cache-aligned per-shard counter board (DESIGN.md §13).
//
// Each shard owns one 64-byte-aligned slot of atomics and is the only
// writer of that slot; any thread may read and sum. A per-slot seqlock
// keeps the 13-field ledger image untorn across fields (the write side is
// wait-free, the read side retries only while a publish is in flight). This
// is the merge-on-query half of the sharded stats story: shards publish their
// E2Server ledger into their slot from their own reactor thread (a timer in
// ShardedE2Server), and a northbound query sums the slots — no lock, no
// shared hot-path state, no cross-shard cache-line ping-pong (each slot is
// alone on its line).
//
// The slot layout mirrors the overload ledger of DESIGN.md §11 so the exact
// reconciliation invariant survives sharding:
//
//   sum(emitted) == sum(delivered) + sum(agent_shed) + sum(server_shed)
//
// where server_shed = rate_shed + flood_shed + queue_shed + fanout_shed
// (fanout_shed counts cross-shard indication-ring overflow — a bounded ring
// sheds with a counted reason, never silently, same rule as BoundedQueue).
//
// Sanctioned use of <atomic> outside src/transport/ (tools/lint.py
// THREAD_OK_FILES): publishing counters across shard threads is impossible
// without atomics; keeping them in this one header keeps the rest of the
// SDK atomic-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace flexric {

/// Plain (non-atomic) image of one slot / of the summed board.
struct ShardLedger {
  std::uint64_t msgs_rx = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t indications_rx = 0;
  std::uint64_t rate_shed = 0;
  std::uint64_t flood_shed = 0;
  std::uint64_t queue_shed = 0;
  std::uint64_t queued = 0;          ///< admitted, not yet dispatched
  std::uint64_t agent_reported_sheds = 0;
  std::uint64_t fanout_shed = 0;     ///< cross-shard indication ring overflow
  std::uint64_t reply_shed = 0;      ///< northbound reply ring overflow
  std::uint64_t dir_events_lost = 0; ///< directory event ring overflow (triggers resync)
  std::uint64_t frames = 0;          ///< frames dispatched (throughput axis)
  std::uint64_t cpu_ns = 0;          ///< shard-thread CPU burned (bench)

  [[nodiscard]] std::uint64_t server_shed() const noexcept {
    return rate_shed + flood_shed + queue_shed + fanout_shed;
  }
};

class ShardCounterBoard {
 public:
  /// One cache line per shard; the shard index is the only writer key.
  struct alignas(64) Slot {
    /// Seqlock sequence: odd while the owning shard is mid-publish. Readers
    /// retry until they observe the same even value before and after the
    /// field loads, so a ledger image is never torn across fields.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> msgs_rx{0};
    std::atomic<std::uint64_t> dispatched{0};
    std::atomic<std::uint64_t> indications_rx{0};
    std::atomic<std::uint64_t> rate_shed{0};
    std::atomic<std::uint64_t> flood_shed{0};
    std::atomic<std::uint64_t> queue_shed{0};
    std::atomic<std::uint64_t> queued{0};
    std::atomic<std::uint64_t> agent_reported_sheds{0};
    std::atomic<std::uint64_t> fanout_shed{0};
    std::atomic<std::uint64_t> reply_shed{0};
    std::atomic<std::uint64_t> dir_events_lost{0};
    std::atomic<std::uint64_t> frames{0};
    std::atomic<std::uint64_t> cpu_ns{0};
  };

  explicit ShardCounterBoard(std::uint32_t shards)
      : shards_(shards), slots_(std::make_unique<Slot[]>(shards)) {}

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }

  /// The writing shard publishes a full ledger image under a seqlock
  /// (Boehm-style): bump the sequence odd, release-fence, store the fields
  /// relaxed, then release-store the sequence even. A reader that sees the
  /// same even sequence on both sides of its loads got an untorn image —
  /// the §11 reconciliation invariant holds across fields, not just within
  /// each one.
  void publish(std::uint32_t shard, const ShardLedger& v) noexcept {
    Slot& s = slots_[shard];
    const std::uint64_t s0 = s.seq.load(std::memory_order_relaxed);
    s.seq.store(s0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.msgs_rx.store(v.msgs_rx, std::memory_order_relaxed);
    s.dispatched.store(v.dispatched, std::memory_order_relaxed);
    s.indications_rx.store(v.indications_rx, std::memory_order_relaxed);
    s.rate_shed.store(v.rate_shed, std::memory_order_relaxed);
    s.flood_shed.store(v.flood_shed, std::memory_order_relaxed);
    s.queue_shed.store(v.queue_shed, std::memory_order_relaxed);
    s.queued.store(v.queued, std::memory_order_relaxed);
    s.agent_reported_sheds.store(v.agent_reported_sheds,
                                 std::memory_order_relaxed);
    s.fanout_shed.store(v.fanout_shed, std::memory_order_relaxed);
    s.reply_shed.store(v.reply_shed, std::memory_order_relaxed);
    s.dir_events_lost.store(v.dir_events_lost, std::memory_order_relaxed);
    s.frames.store(v.frames, std::memory_order_relaxed);
    s.cpu_ns.store(v.cpu_ns, std::memory_order_relaxed);
    s.seq.store(s0 + 2, std::memory_order_release);
  }

  /// Seqlock read side: retry while a publish is in flight (odd sequence)
  /// or raced past us (sequence changed across the loads).
  [[nodiscard]] ShardLedger read(std::uint32_t shard) const noexcept {
    const Slot& s = slots_[shard];
    ShardLedger v;
    for (;;) {
      const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;
      v.msgs_rx = s.msgs_rx.load(std::memory_order_relaxed);
      v.dispatched = s.dispatched.load(std::memory_order_relaxed);
      v.indications_rx = s.indications_rx.load(std::memory_order_relaxed);
      v.rate_shed = s.rate_shed.load(std::memory_order_relaxed);
      v.flood_shed = s.flood_shed.load(std::memory_order_relaxed);
      v.queue_shed = s.queue_shed.load(std::memory_order_relaxed);
      v.queued = s.queued.load(std::memory_order_relaxed);
      v.agent_reported_sheds =
          s.agent_reported_sheds.load(std::memory_order_relaxed);
      v.fanout_shed = s.fanout_shed.load(std::memory_order_relaxed);
      v.reply_shed = s.reply_shed.load(std::memory_order_relaxed);
      v.dir_events_lost = s.dir_events_lost.load(std::memory_order_relaxed);
      v.frames = s.frames.load(std::memory_order_relaxed);
      v.cpu_ns = s.cpu_ns.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) == s1) return v;
    }
  }

  /// Merge-on-query: the global ledger is the field-wise sum of the slots.
  [[nodiscard]] ShardLedger sum() const noexcept {
    ShardLedger total;
    for (std::uint32_t i = 0; i < shards_; ++i) {
      const ShardLedger v = read(i);
      total.msgs_rx += v.msgs_rx;
      total.dispatched += v.dispatched;
      total.indications_rx += v.indications_rx;
      total.rate_shed += v.rate_shed;
      total.flood_shed += v.flood_shed;
      total.queue_shed += v.queue_shed;
      total.queued += v.queued;
      total.agent_reported_sheds += v.agent_reported_sheds;
      total.fanout_shed += v.fanout_shed;
      total.reply_shed += v.reply_shed;
      total.dir_events_lost += v.dir_events_lost;
      total.frames += v.frames;
      total.cpu_ns += v.cpu_ns;
    }
    return total;
  }

 private:
  std::uint32_t shards_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace flexric
