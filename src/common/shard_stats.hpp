// Cache-aligned per-shard counter board (DESIGN.md §13).
//
// Each shard owns one 64-byte-aligned slot of atomics and is the only
// writer of that slot; any thread may read and sum. A per-slot seqlock
// keeps the 13-field ledger image untorn across fields (the write side is
// wait-free, the read side retries only while a publish is in flight). This
// is the merge-on-query half of the sharded stats story: shards publish their
// E2Server ledger into their slot from their own reactor thread (a timer in
// ShardedE2Server), and a northbound query sums the slots — no lock, no
// shared hot-path state, no cross-shard cache-line ping-pong (each slot is
// alone on its line).
//
// The slot layout mirrors the overload ledger of DESIGN.md §11 so the exact
// reconciliation invariant survives sharding:
//
//   sum(emitted) == sum(delivered) + sum(agent_shed) + sum(server_shed)
//
// where server_shed = rate_shed + flood_shed + queue_shed + fanout_shed
// + orphan_indications (fanout_shed counts cross-shard indication-ring
// overflow, orphan_indications counts indications with no matching
// subscription — a bounded ring or a restarted shard sheds with a counted
// reason, never silently, same rule as BoundedQueue).
//
// Sanctioned use of <atomic> outside src/transport/ (tools/lint.py
// THREAD_OK_FILES): publishing counters across shard threads is impossible
// without atomics; keeping them in this one header keeps the rest of the
// SDK atomic-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace flexric {

/// Plain (non-atomic) image of one slot / of the summed board.
struct ShardLedger {
  std::uint64_t msgs_rx = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t indications_rx = 0;
  std::uint64_t rate_shed = 0;
  std::uint64_t flood_shed = 0;
  std::uint64_t queue_shed = 0;
  std::uint64_t queued = 0;          ///< admitted, not yet dispatched
  std::uint64_t agent_reported_sheds = 0;
  std::uint64_t fanout_shed = 0;     ///< cross-shard indication ring overflow
  std::uint64_t reply_shed = 0;      ///< northbound reply ring overflow
  std::uint64_t dir_events_lost = 0; ///< directory event ring overflow (triggers resync)
  std::uint64_t orphan_indications = 0;  ///< no matching subscription (counted drop)
  std::uint64_t frames = 0;          ///< frames dispatched (throughput axis)
  std::uint64_t cpu_ns = 0;          ///< shard-thread CPU burned (bench)

  [[nodiscard]] std::uint64_t server_shed() const noexcept {
    return rate_shed + flood_shed + queue_shed + fanout_shed +
           orphan_indications;
  }

  /// Field-wise accumulate — the merge-on-query sum, and how the ledger of
  /// a torn-down shard incarnation folds into its retired total (§15).
  void add(const ShardLedger& v) noexcept {
    msgs_rx += v.msgs_rx;
    dispatched += v.dispatched;
    indications_rx += v.indications_rx;
    rate_shed += v.rate_shed;
    flood_shed += v.flood_shed;
    queue_shed += v.queue_shed;
    queued += v.queued;
    agent_reported_sheds += v.agent_reported_sheds;
    fanout_shed += v.fanout_shed;
    reply_shed += v.reply_shed;
    dir_events_lost += v.dir_events_lost;
    orphan_indications += v.orphan_indications;
    frames += v.frames;
    cpu_ns += v.cpu_ns;
  }
};

/// Cache-aligned per-shard liveness board (DESIGN.md §15).
///
/// Each shard loop publishes a cheap heartbeat — a loop-turn counter plus
/// the reactor timestamp of its last observed progress — into its own
/// 64-byte slot; the home-side watchdog reads the slots and classifies
/// shards (healthy / degraded / quarantined / recovering) from the age of
/// the newest beat. Same single-writer-per-slot discipline as the counter
/// board below: the shard is the only writer of its slot, any thread reads.
///
/// The two fields are published progress-first / turns-last with a release
/// store on `turns`, and read turns-first with an acquire load, so a reader
/// that observes turn N also observes (at least) the progress timestamp
/// that accompanied it. A torn pair is still monotone in both fields, so
/// the watchdog can only under-estimate freshness — the safe direction.
class ShardHealthBoard {
 public:
  struct Beat {
    std::uint64_t turns = 0;   ///< loop-turn counter (heartbeat ticks)
    std::int64_t progress_ns = 0;  ///< reactor time of the last beat
  };

  explicit ShardHealthBoard(std::uint32_t shards)
      : shards_(shards), slots_(std::make_unique<Slot[]>(shards)) {}

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }

  /// Shard-side: one heartbeat. Wait-free, two stores, no rmw.
  void beat(std::uint32_t shard, std::int64_t now_ns) noexcept {
    Slot& s = slots_[shard];
    const std::uint64_t t = s.turns.load(std::memory_order_relaxed);
    s.progress_ns.store(now_ns, std::memory_order_relaxed);
    s.turns.store(t + 1, std::memory_order_release);
  }

  /// Watchdog-side: the freshest beat this reader can prove.
  [[nodiscard]] Beat read(std::uint32_t shard) const noexcept {
    const Slot& s = slots_[shard];
    Beat b;
    b.turns = s.turns.load(std::memory_order_acquire);
    b.progress_ns = s.progress_ns.load(std::memory_order_relaxed);
    return b;
  }

  /// Recovery: a replacement shard starts its heartbeat history fresh so
  /// hysteresis counts beats of the new loop, not the corpse's.
  void reset(std::uint32_t shard) noexcept {
    Slot& s = slots_[shard];
    s.progress_ns.store(0, std::memory_order_relaxed);
    s.turns.store(0, std::memory_order_release);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> turns{0};
    std::atomic<std::int64_t> progress_ns{0};
  };

  std::uint32_t shards_;
  std::unique_ptr<Slot[]> slots_;
};

class ShardCounterBoard {
 public:
  /// One cache line per shard; the shard index is the only writer key.
  struct alignas(64) Slot {
    /// Seqlock sequence: odd while the owning shard is mid-publish. Readers
    /// retry until they observe the same even value before and after the
    /// field loads, so a ledger image is never torn across fields.
    std::atomic<std::uint64_t> seq{0};
    /// Incarnation epoch (DESIGN.md §15): a publish stamped with a stale
    /// epoch is dropped, so a force-restarted shard's leaked corpse loop
    /// cannot scribble over the replacement's slot if it ever un-wedges.
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> msgs_rx{0};
    std::atomic<std::uint64_t> dispatched{0};
    std::atomic<std::uint64_t> indications_rx{0};
    std::atomic<std::uint64_t> rate_shed{0};
    std::atomic<std::uint64_t> flood_shed{0};
    std::atomic<std::uint64_t> queue_shed{0};
    std::atomic<std::uint64_t> queued{0};
    std::atomic<std::uint64_t> agent_reported_sheds{0};
    std::atomic<std::uint64_t> fanout_shed{0};
    std::atomic<std::uint64_t> reply_shed{0};
    std::atomic<std::uint64_t> dir_events_lost{0};
    std::atomic<std::uint64_t> orphan_indications{0};
    std::atomic<std::uint64_t> frames{0};
    std::atomic<std::uint64_t> cpu_ns{0};
  };

  explicit ShardCounterBoard(std::uint32_t shards)
      : shards_(shards), slots_(std::make_unique<Slot[]>(shards)) {}

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }

  /// The writing shard publishes a full ledger image under a seqlock
  /// (Boehm-style): bump the sequence odd, release-fence, store the fields
  /// relaxed, then release-store the sequence even. A reader that sees the
  /// same even sequence on both sides of its loads got an untorn image —
  /// the §11 reconciliation invariant holds across fields, not just within
  /// each one.
  void publish(std::uint32_t shard, const ShardLedger& v) noexcept {
    publish(shard, v, epoch_of(shard));
  }

  /// Epoch-stamped publish: writers born before the last bump_epoch() are
  /// silently dropped. The residual race — a writer that passed the check
  /// and then stalled mid-publish — is confined to threaded force-restart
  /// (the caller also retires that incarnation's rings, so the slot is the
  /// only shared cell, and the replacement's next publish overwrites it).
  void publish(std::uint32_t shard, const ShardLedger& v,
               std::uint64_t epoch) noexcept {
    Slot& s = slots_[shard];
    if (epoch != s.epoch.load(std::memory_order_acquire)) return;
    const std::uint64_t s0 = s.seq.load(std::memory_order_relaxed);
    s.seq.store(s0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.msgs_rx.store(v.msgs_rx, std::memory_order_relaxed);
    s.dispatched.store(v.dispatched, std::memory_order_relaxed);
    s.indications_rx.store(v.indications_rx, std::memory_order_relaxed);
    s.rate_shed.store(v.rate_shed, std::memory_order_relaxed);
    s.flood_shed.store(v.flood_shed, std::memory_order_relaxed);
    s.queue_shed.store(v.queue_shed, std::memory_order_relaxed);
    s.queued.store(v.queued, std::memory_order_relaxed);
    s.agent_reported_sheds.store(v.agent_reported_sheds,
                                 std::memory_order_relaxed);
    s.fanout_shed.store(v.fanout_shed, std::memory_order_relaxed);
    s.reply_shed.store(v.reply_shed, std::memory_order_relaxed);
    s.dir_events_lost.store(v.dir_events_lost, std::memory_order_relaxed);
    s.orphan_indications.store(v.orphan_indications,
                               std::memory_order_relaxed);
    s.frames.store(v.frames, std::memory_order_relaxed);
    s.cpu_ns.store(v.cpu_ns, std::memory_order_relaxed);
    s.seq.store(s0 + 2, std::memory_order_release);
  }

  /// Seqlock read side: retry while a publish is in flight (odd sequence)
  /// or raced past us (sequence changed across the loads).
  [[nodiscard]] ShardLedger read(std::uint32_t shard) const noexcept {
    const Slot& s = slots_[shard];
    ShardLedger v;
    for (;;) {
      const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;
      v.msgs_rx = s.msgs_rx.load(std::memory_order_relaxed);
      v.dispatched = s.dispatched.load(std::memory_order_relaxed);
      v.indications_rx = s.indications_rx.load(std::memory_order_relaxed);
      v.rate_shed = s.rate_shed.load(std::memory_order_relaxed);
      v.flood_shed = s.flood_shed.load(std::memory_order_relaxed);
      v.queue_shed = s.queue_shed.load(std::memory_order_relaxed);
      v.queued = s.queued.load(std::memory_order_relaxed);
      v.agent_reported_sheds =
          s.agent_reported_sheds.load(std::memory_order_relaxed);
      v.fanout_shed = s.fanout_shed.load(std::memory_order_relaxed);
      v.reply_shed = s.reply_shed.load(std::memory_order_relaxed);
      v.dir_events_lost = s.dir_events_lost.load(std::memory_order_relaxed);
      v.orphan_indications =
          s.orphan_indications.load(std::memory_order_relaxed);
      v.frames = s.frames.load(std::memory_order_relaxed);
      v.cpu_ns = s.cpu_ns.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) == s1) return v;
    }
  }

  [[nodiscard]] std::uint64_t epoch_of(std::uint32_t shard) const noexcept {
    return slots_[shard].epoch.load(std::memory_order_acquire);
  }
  /// Retire the current writer incarnation of `shard`'s slot (recovery).
  void bump_epoch(std::uint32_t shard) noexcept {
    slots_[shard].epoch.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Merge-on-query: the global ledger is the field-wise sum of the slots.
  [[nodiscard]] ShardLedger sum() const noexcept {
    ShardLedger total;
    for (std::uint32_t i = 0; i < shards_; ++i) total.add(read(i));
    return total;
  }

 private:
  std::uint32_t shards_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace flexric
