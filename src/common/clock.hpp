// Time sources: real monotonic time, per-thread CPU time, and the virtual
// clock driving the RAN simulator.
//
// The evaluation reports "normalized CPU usage (%)": thread CPU time divided
// by wall time, as the paper's htop/docker-stats measurements do. CpuMeter
// packages that computation.
#pragma once

#include <cstdint>
#include <ctime>

namespace flexric {

/// Nanoseconds since an arbitrary epoch. All SDK timestamps use this unit.
using Nanos = std::int64_t;

constexpr Nanos kMicro = 1'000;
constexpr Nanos kMilli = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

/// Real monotonic clock (CLOCK_MONOTONIC).
Nanos mono_now() noexcept;

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
Nanos thread_cpu_now() noexcept;

/// CPU time consumed by the whole process (CLOCK_PROCESS_CPUTIME_ID).
Nanos process_cpu_now() noexcept;

/// Resident set size of this process in bytes (from /proc/self/statm).
std::uint64_t rss_bytes() noexcept;

/// Measures CPU utilization of a code region: cpu-time / wall-time, in
/// percent, like `top`. Single-threaded regions therefore max out at 100 %.
class CpuMeter {
 public:
  void start() noexcept {
    wall0_ = mono_now();
    cpu0_ = process_cpu_now();
    running_ = true;
  }
  void stop() noexcept {
    if (!running_) return;
    wall_ += mono_now() - wall0_;
    cpu_ += process_cpu_now() - cpu0_;
    running_ = false;
  }
  [[nodiscard]] Nanos cpu_nanos() const noexcept { return cpu_; }
  [[nodiscard]] Nanos wall_nanos() const noexcept { return wall_; }
  [[nodiscard]] double cpu_percent() const noexcept {
    return wall_ > 0 ? 100.0 * static_cast<double>(cpu_) /
                           static_cast<double>(wall_)
                     : 0.0;
  }

 private:
  Nanos wall0_ = 0, cpu0_ = 0;
  Nanos wall_ = 0, cpu_ = 0;
  bool running_ = false;
};

/// Virtual clock for deterministic simulation. The TTI engine advances it in
/// 1 ms steps; components read it instead of the real clock so experiments
/// are reproducible and can run faster than real time.
class VirtualClock {
 public:
  [[nodiscard]] Nanos now() const noexcept { return now_; }
  void advance(Nanos dt) noexcept { now_ += dt; }
  void set(Nanos t) noexcept { now_ = t; }

 private:
  Nanos now_ = 0;
};

}  // namespace flexric
