// Measurement primitives shared by tests and benches: counters, rate meters,
// and a sampling histogram with quantile/CDF extraction (used for the RTT
// CDFs in Fig. 7/9/11 of the paper).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace flexric {

/// Monotonic event/byte counter with a named label.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) noexcept { value += n; }
};

/// Bytes-per-second meter over a (virtual or real) time interval.
class RateMeter {
 public:
  void record(std::uint64_t nbytes) noexcept { bytes_ += nbytes; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  /// Megabits per second over `interval` nanoseconds.
  [[nodiscard]] double mbps(Nanos interval) const noexcept {
    if (interval <= 0) return 0.0;
    return static_cast<double>(bytes_) * 8.0 / 1e6 /
           (static_cast<double>(interval) / static_cast<double>(kSecond));
  }
  void reset() noexcept { bytes_ = 0; }

 private:
  std::uint64_t bytes_ = 0;
};

/// Stores every sample; supports mean/min/max/quantiles and CDF export.
/// Sample counts in the reproduced experiments are small enough (≤ a few
/// million) that exact storage beats a sketch in simplicity and fidelity.
///
/// Empty-histogram semantics: mean/min/max/quantile return 0.0 and cdf
/// returns an empty vector; no statistic ever reads missing samples.
class Histogram {
 public:
  void record(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  /// Pre-allocate for `n` samples (benches record millions in a tight loop).
  void reserve(std::size_t n) { samples_.reserve(n); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// q in [0,1] (clamped; NaN treated as 0); nearest-rank quantile.
  /// Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  /// (value, cumulative fraction) pairs at `points` evenly spaced ranks.
  /// Empty when no samples were recorded or points == 0.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t points = 100) const;
  void clear() {
    samples_.clear();
    sorted_ = false;
  }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Pretty-print helpers for bench output tables.
std::string format_mbps(double mbps);
std::string format_micros(double micros);

}  // namespace flexric
