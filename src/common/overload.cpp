#include "common/overload.hpp"

namespace flexric::overload {

const char* msg_class_name(MsgClass c) noexcept {
  switch (c) {
    case MsgClass::control: return "control";
    case MsgClass::data: return "data";
  }
  return "unknown";
}

const char* shed_policy_name(ShedPolicy p) noexcept {
  switch (p) {
    case ShedPolicy::drop_newest: return "drop_newest";
    case ShedPolicy::drop_oldest: return "drop_oldest";
    case ShedPolicy::fair_per_agent: return "fair_per_agent";
  }
  return "unknown";
}

RateLimiter::RateLimiter(double rate_per_sec, double burst)
    : rate_(rate_per_sec),
      burst_(burst > 0.0 ? burst : rate_per_sec),
      tokens_(0.0) {}

bool RateLimiter::admit(Nanos now) {
  if (unlimited()) return true;
  if (!primed_) {
    // First sight of traffic: start with a full bucket so a well-behaved
    // sender is never shed on its opening burst.
    primed_ = true;
    last_ = now;
    tokens_ = burst_;
  } else if (now > last_) {
    tokens_ += rate_ * (static_cast<double>(now - last_) / 1e9);
    if (tokens_ > burst_) tokens_ = burst_;
    last_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RateLimiter::tokens(Nanos now) const {
  if (unlimited()) return 0.0;
  if (!primed_) return burst_;
  double t = tokens_;
  if (now > last_) t += rate_ * (static_cast<double>(now - last_) / 1e9);
  return t > burst_ ? burst_ : t;
}

}  // namespace flexric::overload
