// Cell configuration and link-level tables for the base-station simulator.
//
// The evaluation's cells are reproduced as configurations:
//   LTE  5 MHz:  25 PRBs (Figs. 6a, 15 dedicated)
//   LTE 10 MHz:  50 PRBs (Fig. 15 shared)
//   NR  20 MHz: 106 PRBs (Figs. 6a, 13)
//
// Throughput per PRB follows a 3GPP-style spectral-efficiency table:
// TBS(mcs, prbs) ≈ prbs * 12 subcarriers * 14 symbols * eff(mcs) * 0.8
// (20 % control/reference-signal overhead), which matches the paper's
// observed rates (e.g. ~17 Mbps per 25-PRB eNB at MCS 28; ~55-60 Mbps cell
// throughput at 106 PRBs, MCS 20).
#pragma once

#include <cstdint>

#include "common/clock.hpp"

namespace flexric::ran {

enum class Rat : std::uint8_t { lte = 0, nr };

struct CellConfig {
  Rat rat = Rat::lte;
  std::uint32_t cell_id = 0;
  std::uint32_t num_prbs = 25;      ///< 25 = 5 MHz LTE, 106 = 20 MHz NR
  Nanos tti = kMilli;               ///< scheduling interval (1 ms)
  std::uint8_t default_mcs = 28;    ///< fixed MCS unless channel model used
  bool vary_channel = false;        ///< enable the CQI random-walk model
};

/// Approximate spectral efficiency (bits per resource element) per MCS,
/// following 3GPP TS 38.214 table 5.1.3.1-1 (QPSK..64QAM).
double mcs_efficiency(std::uint8_t mcs) noexcept;

/// Transport block size in BITS for an allocation of `prbs` PRBs at `mcs`.
std::uint32_t transport_block_bits(std::uint8_t mcs,
                                   std::uint32_t prbs) noexcept;

/// Peak cell rate in Mbps for sizing buffers and pacers.
double cell_capacity_mbps(const CellConfig& cfg) noexcept;

/// CQI (1..15) to MCS (0..28) mapping.
std::uint8_t cqi_to_mcs(std::uint8_t cqi) noexcept;

}  // namespace flexric::ran
