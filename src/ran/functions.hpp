// Bundled RAN functions: the pre-defined SMs shipped with the agent library
// (paper §4.1.1), wired to the base-station simulator.
//
// Monitoring functions (MAC/RLC/PDCP/KPM) follow the periodic-report
// pattern; RRC is on-event; SC and TC are control SMs with optional status
// reports; HW is the ping SM for the RTT experiments.
//
// Periodic reports are clocked by *virtual* time: the experiment harness
// calls on_tti(now) after every simulator tick, so reporting keeps the 1 ms
// cadence of the paper while the simulation runs as fast as the CPU allows.
// Per-controller UE visibility (§4.1.2) is enforced here by intersecting
// each report with AgentServices::ue_visible().
#pragma once

#include <map>
#include <optional>

#include "agent/agent.hpp"
#include "agent/ran_function.hpp"
#include "e2sm/assoc_sm.hpp"
#include "e2sm/hw_sm.hpp"
#include "e2sm/kpm_sm.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/pdcp_sm.hpp"
#include "e2sm/rlc_sm.hpp"
#include "e2sm/rrc_sm.hpp"
#include "e2sm/slice_sm.hpp"
#include "e2sm/tc_sm.hpp"
#include "ran/base_station.hpp"

namespace flexric::ran {

/// Base for RAN functions that emit periodic reports in virtual time.
class PeriodicReportBase : public agent::RanFunction {
 public:
  explicit PeriodicReportBase(WireFormat sm_format) : fmt_(sm_format) {}

  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override;
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest& req,
                                agent::ControllerId origin) override;
  void on_controller_detached(agent::ControllerId origin) override;

  /// Drive reporting from the simulation clock.
  virtual void on_tti(Nanos now);

  [[nodiscard]] WireFormat sm_format() const noexcept { return fmt_; }
  [[nodiscard]] std::size_t num_subscriptions() const noexcept {
    return subs_.size();
  }

 protected:
  struct SubState {
    agent::ControllerId origin = 0;
    e2ap::RicRequestId request;
    std::uint8_t action_id = 0;
    Buffer action_def;
    std::uint32_t period_ms = 1000;
    Nanos next_due = 0;
    std::uint32_t sn = 0;
  };

  /// Produce (header, message) SM payloads for one subscription, or nullopt
  /// to skip this period.
  virtual std::optional<std::pair<Buffer, Buffer>> produce(
      const SubState& sub, Nanos now) = 0;

  WireFormat fmt_;

 private:
  using Key = std::pair<agent::ControllerId, e2ap::RicRequestId>;
  std::map<Key, SubState> subs_;
};

// ---------------------------------------------------------------------------
// Monitoring SMs
// ---------------------------------------------------------------------------

class MacStatsFunction final : public PeriodicReportBase {
 public:
  MacStatsFunction(BaseStation& bs, WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<Buffer> on_control(const e2ap::ControlRequest&,
                            agent::ControllerId) override {
    return Error{Errc::unsupported, "MAC stats SM has no control service"};
  }

 protected:
  std::optional<std::pair<Buffer, Buffer>> produce(const SubState& sub,
                                                   Nanos now) override;

 private:
  BaseStation& bs_;
  e2ap::RanFunctionItem desc_;
};

class RlcStatsFunction final : public PeriodicReportBase {
 public:
  RlcStatsFunction(BaseStation& bs, WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<Buffer> on_control(const e2ap::ControlRequest&,
                            agent::ControllerId) override {
    return Error{Errc::unsupported, "RLC stats SM has no control service"};
  }

 protected:
  std::optional<std::pair<Buffer, Buffer>> produce(const SubState& sub,
                                                   Nanos now) override;

 private:
  BaseStation& bs_;
  e2ap::RanFunctionItem desc_;
};

class PdcpStatsFunction final : public PeriodicReportBase {
 public:
  PdcpStatsFunction(BaseStation& bs, WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<Buffer> on_control(const e2ap::ControlRequest&,
                            agent::ControllerId) override {
    return Error{Errc::unsupported, "PDCP stats SM has no control service"};
  }

 protected:
  std::optional<std::pair<Buffer, Buffer>> produce(const SubState& sub,
                                                   Nanos now) override;

 private:
  BaseStation& bs_;
  e2ap::RanFunctionItem desc_;
};

class KpmFunction final : public PeriodicReportBase {
 public:
  KpmFunction(BaseStation& bs, WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<Buffer> on_control(const e2ap::ControlRequest&,
                            agent::ControllerId) override {
    return Error{Errc::unsupported, "KPM SM has no control service"};
  }

 protected:
  std::optional<std::pair<Buffer, Buffer>> produce(const SubState& sub,
                                                   Nanos now) override;

 private:
  BaseStation& bs_;
  e2ap::RanFunctionItem desc_;
};

// ---------------------------------------------------------------------------
// RRC events (on-event SM)
// ---------------------------------------------------------------------------

class RrcFunction final : public agent::RanFunction {
 public:
  RrcFunction(BaseStation& bs, WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override;
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest& req,
                                agent::ControllerId origin) override;
  Result<Buffer> on_control(const e2ap::ControlRequest&,
                            agent::ControllerId) override {
    return Error{Errc::unsupported, "RRC SM has no control service"};
  }
  void on_controller_detached(agent::ControllerId origin) override;

 private:
  void emit(const e2sm::rrc::IndicationMsg& ev);

  struct SubState {
    agent::ControllerId origin;
    e2ap::RicRequestId request;
    std::uint8_t action_id;
    e2sm::rrc::ActionDef def;
    std::uint32_t sn = 0;
  };
  BaseStation& bs_;
  WireFormat fmt_;
  e2ap::RanFunctionItem desc_;
  std::vector<SubState> subs_;
};

// ---------------------------------------------------------------------------
// Slice control SM
// ---------------------------------------------------------------------------

class SliceCtrlFunction final : public PeriodicReportBase {
 public:
  SliceCtrlFunction(BaseStation& bs, WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId origin) override;

 protected:
  std::optional<std::pair<Buffer, Buffer>> produce(const SubState& sub,
                                                   Nanos now) override;

 private:
  BaseStation& bs_;
  e2ap::RanFunctionItem desc_;
};

// ---------------------------------------------------------------------------
// Traffic control SM
// ---------------------------------------------------------------------------

class TcCtrlFunction final : public PeriodicReportBase {
 public:
  TcCtrlFunction(BaseStation& bs, WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId origin) override;
  /// Supports POLICY actions (e2sm::tc::PolicyDef) in addition to reports:
  /// the RAN function applies the anti-bufferbloat pacer itself when a
  /// bearer's sojourn crosses the installed limit (Appendix A.3 service).
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override;
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest& req,
                                agent::ControllerId origin) override;
  void on_controller_detached(agent::ControllerId origin) override;
  /// Reports + policy enforcement.
  void on_tti(Nanos now) override;

  [[nodiscard]] std::size_t num_policies() const noexcept {
    return policies_.size();
  }

 protected:
  std::optional<std::pair<Buffer, Buffer>> produce(const SubState& sub,
                                                   Nanos now) override;

 private:
  struct PolicyState {
    agent::ControllerId origin;
    e2ap::RicRequestId request;
    e2sm::tc::PolicyDef def;
  };
  void enforce_policies(Nanos now);

  BaseStation& bs_;
  e2ap::RanFunctionItem desc_;
  std::vector<PolicyState> policies_;
};

// ---------------------------------------------------------------------------
// Hello-World SM (ping / pong, no base station needed)
// ---------------------------------------------------------------------------

class HwFunction final : public agent::RanFunction {
 public:
  explicit HwFunction(WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest& req,
      agent::ControllerId origin) override;
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest& req,
                                agent::ControllerId origin) override;
  /// Ping arrives as RIC Control; pong leaves as RIC Indication on the
  /// origin's subscription (the paper's modified HW SM, §5.2).
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId origin) override;
  void on_controller_detached(agent::ControllerId origin) override;

 private:
  struct SubState {
    e2ap::RicRequestId request;
    std::uint8_t action_id = 0;
    std::uint32_t sn = 0;
  };
  WireFormat fmt_;
  e2ap::RanFunctionItem desc_;
  std::map<agent::ControllerId, SubState> subs_;
};

// ---------------------------------------------------------------------------
// UE-to-controller association SM (Fig. 4, disaggregated deployments)
// ---------------------------------------------------------------------------

/// Lets a (typically infrastructure) controller configure which UEs the
/// agent exposes to which of its other controllers. Needs no base station:
/// it manipulates the agent's own association table.
class AssocFunction final : public agent::RanFunction {
 public:
  explicit AssocFunction(WireFormat fmt);
  [[nodiscard]] const e2ap::RanFunctionItem& descriptor() const override {
    return desc_;
  }
  Result<agent::SubscriptionOutcome> on_subscription(
      const e2ap::SubscriptionRequest&, agent::ControllerId) override {
    return Error{Errc::unsupported, "UE-ASSOC SM has no report service"};
  }
  Status on_subscription_delete(const e2ap::SubscriptionDeleteRequest&,
                                agent::ControllerId) override {
    return {Errc::not_found, "no subscriptions"};
  }
  Result<Buffer> on_control(const e2ap::ControlRequest& req,
                            agent::ControllerId origin) override;

 private:
  WireFormat fmt_;
  e2ap::RanFunctionItem desc_;
};

/// Bundle: create + register every BS-coupled RAN function on an agent and
/// forward simulator ticks. This is the glue a base-station wrapper uses.
class BsFunctionBundle {
 public:
  BsFunctionBundle(BaseStation& bs, agent::E2Agent& agent, WireFormat sm_fmt);
  /// Call after every BaseStation::tick.
  void on_tti(Nanos now);

  MacStatsFunction& mac() { return *mac_; }
  RlcStatsFunction& rlc() { return *rlc_; }
  PdcpStatsFunction& pdcp() { return *pdcp_; }
  KpmFunction& kpm() { return *kpm_; }
  SliceCtrlFunction& slice() { return *slice_; }
  TcCtrlFunction& tc() { return *tc_; }

 private:
  std::shared_ptr<MacStatsFunction> mac_;
  std::shared_ptr<RlcStatsFunction> rlc_;
  std::shared_ptr<PdcpStatsFunction> pdcp_;
  std::shared_ptr<KpmFunction> kpm_;
  std::shared_ptr<RrcFunction> rrc_;
  std::shared_ptr<SliceCtrlFunction> slice_;
  std::shared_ptr<TcCtrlFunction> tc_;
};

}  // namespace flexric::ran
