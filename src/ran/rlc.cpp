#include "ran/rlc.hpp"

#include <algorithm>

namespace flexric::ran {

bool RlcEntity::enqueue(Packet p, Nanos now) {
  if (buffer_bytes_ + p.size_bytes > limit_bytes_) {
    stats_.dropped_sdus++;
    return false;
  }
  p.enqueued = now;
  buffer_bytes_ += p.size_bytes;
  stats_.rx_bytes += p.size_bytes;
  stats_.rx_sdus++;
  q_.push_back(p);
  return true;
}

std::vector<Packet> RlcEntity::pull(std::uint32_t grant_bytes, Nanos now,
                                    std::uint32_t* used_bytes) {
  std::vector<Packet> out;
  std::uint32_t used = 0;
  while (grant_bytes > used && !q_.empty()) {
    Packet& head = q_.front();
    std::uint32_t remaining = head.size_bytes - head_sent_;
    std::uint32_t take = std::min(remaining, grant_bytes - used);
    used += take;
    head_sent_ += take;
    buffer_bytes_ -= take;  // occupancy shrinks as segments are transmitted
    if (head_sent_ == head.size_bytes) {
      // Last byte served: the packet leaves the DRB buffer now.
      stats_.tx_bytes += head.size_bytes;
      stats_.tx_pdus++;
      double sojourn_ms = static_cast<double>(now - head.enqueued) /
                          static_cast<double>(kMilli);
      stats_.sojourn_sum_ms += sojourn_ms;
      stats_.sojourn_max_ms = std::max(stats_.sojourn_max_ms, sojourn_ms);
      stats_.sojourn_count++;
      out.push_back(head);
      q_.pop_front();
      head_sent_ = 0;
    }
  }
  if (used_bytes != nullptr) *used_bytes = used;
  return out;
}

double RlcEntity::head_sojourn_ms(Nanos now) const noexcept {
  if (q_.empty()) return 0.0;
  return static_cast<double>(now - q_.front().enqueued) /
         static_cast<double>(kMilli);
}

void RlcEntity::snapshot_period(double* avg_ms, double* max_ms) {
  if (avg_ms != nullptr)
    *avg_ms = stats_.sojourn_count > 0
                  ? stats_.sojourn_sum_ms /
                        static_cast<double>(stats_.sojourn_count)
                  : 0.0;
  if (max_ms != nullptr) *max_ms = stats_.sojourn_max_ms;
  stats_.sojourn_sum_ms = 0.0;
  stats_.sojourn_max_ms = 0.0;
  stats_.sojourn_count = 0;
}

}  // namespace flexric::ran
