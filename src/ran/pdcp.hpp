// PDCP entity (one per DRB): header overhead + counters for the PDCP SM.
//
// Ciphering/integrity are modeled as the 3-byte PDCP header only; the entity
// is a counting pass-through on the simulated downlink path.
#pragma once

#include <cstdint>

#include "ran/packet.hpp"

namespace flexric::ran {

class PdcpEntity {
 public:
  static constexpr std::uint32_t kHeaderBytes = 3;

  /// Process one downlink SDU; returns the PDU (header added).
  Packet process_tx(Packet p) noexcept {
    stats_.tx_sdus++;
    stats_.tx_sdu_bytes += p.size_bytes;
    p.size_bytes += kHeaderBytes;
    stats_.tx_pdus++;
    stats_.tx_pdu_bytes += p.size_bytes;
    return p;
  }

  /// Account one uplink PDU (simulated UE feedback path).
  void process_rx(std::uint32_t pdu_bytes) noexcept {
    stats_.rx_pdus++;
    stats_.rx_pdu_bytes += pdu_bytes;
    stats_.rx_sdus++;
    stats_.rx_sdu_bytes +=
        pdu_bytes > kHeaderBytes ? pdu_bytes - kHeaderBytes : 0;
  }

  void discard() noexcept { stats_.discarded_sdus++; }

  struct Stats {
    std::uint64_t tx_sdu_bytes = 0;
    std::uint64_t tx_pdu_bytes = 0;
    std::uint64_t rx_sdu_bytes = 0;
    std::uint64_t rx_pdu_bytes = 0;
    std::uint32_t tx_sdus = 0;
    std::uint32_t tx_pdus = 0;
    std::uint32_t rx_sdus = 0;
    std::uint32_t rx_pdus = 0;
    std::uint32_t discarded_sdus = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Stats stats_;
};

}  // namespace flexric::ran
