#include "ran/functions.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "e2sm/common.hpp"

namespace flexric::ran {

using agent::ControllerId;
using agent::SubscriptionOutcome;

// ---------------------------------------------------------------------------
// PeriodicReportBase
// ---------------------------------------------------------------------------

Result<SubscriptionOutcome> PeriodicReportBase::on_subscription(
    const e2ap::SubscriptionRequest& req, ControllerId origin) {
  auto trigger =
      e2sm::sm_decode<e2sm::EventTrigger>(req.event_trigger, fmt_);
  if (!trigger) return trigger.error();
  if (trigger->kind != e2sm::TriggerKind::periodic)
    return Error{Errc::unsupported, "only periodic triggers supported"};
  if (trigger->period_ms == 0)
    return Error{Errc::rejected, "period must be > 0"};

  SubscriptionOutcome outcome;
  SubState st;
  st.origin = origin;
  st.request = req.request;
  st.period_ms = trigger->period_ms;
  for (const auto& action : req.actions) {
    if (action.type != e2ap::ActionType::report) {
      outcome.not_admitted.emplace_back(
          action.id, e2ap::Cause{e2ap::Cause::Group::ric, 1});
      continue;
    }
    outcome.admitted.push_back(action.id);
    st.action_id = action.id;  // one report action per subscription
    st.action_def = action.definition;
  }
  if (outcome.admitted.empty())
    return Error{Errc::rejected, "no admissible action"};
  subs_[{origin, req.request}] = std::move(st);
  return outcome;
}

Status PeriodicReportBase::on_subscription_delete(
    const e2ap::SubscriptionDeleteRequest& req, ControllerId origin) {
  return subs_.erase({origin, req.request}) > 0
             ? Status::ok()
             : Status{Errc::not_found, "unknown subscription"};
}

void PeriodicReportBase::on_controller_detached(ControllerId origin) {
  for (auto it = subs_.begin(); it != subs_.end();)
    it = (it->first.first == origin) ? subs_.erase(it) : std::next(it);
}

void PeriodicReportBase::on_tti(Nanos now) {
  for (auto& [key, sub] : subs_) {
    if (now < sub.next_due) continue;
    sub.next_due = now + static_cast<Nanos>(sub.period_ms) * kMilli;
    auto payload = produce(sub, now);
    if (!payload) continue;
    e2ap::Indication ind;
    ind.request = sub.request;
    ind.ran_function_id = descriptor().id;
    ind.action_id = sub.action_id;
    ind.sn = sub.sn++;
    ind.type = e2ap::ActionType::report;
    ind.header = std::move(payload->first);
    ind.message = std::move(payload->second);
    if (services_ != nullptr)
      (void)services_->send_indication(sub.origin, ind);
  }
}

// ---------------------------------------------------------------------------
// MacStatsFunction
// ---------------------------------------------------------------------------

MacStatsFunction::MacStatsFunction(BaseStation& bs, WireFormat fmt)
    : PeriodicReportBase(fmt), bs_(bs) {
  desc_ = e2sm::make_ran_function<e2sm::mac::Sm>();
}

std::optional<std::pair<Buffer, Buffer>> MacStatsFunction::produce(
    const SubState& sub, Nanos now) {
  e2sm::mac::ActionDef def;
  if (!sub.action_def.empty()) {
    auto d = e2sm::sm_decode<e2sm::mac::ActionDef>(sub.action_def, fmt_);
    if (d) def = std::move(*d);
  }
  auto msg = bs_.mac_stats(def.include_harq, def.rnti_filter);
  // Multi-controller UE visibility (§4.1.2).
  if (services_ != nullptr)
    std::erase_if(msg.ues, [&](const e2sm::mac::UeStats& s) {
      return !services_->ue_visible(s.rnti, sub.origin);
    });
  e2sm::mac::IndicationHdr hdr;
  hdr.tstamp_ns = static_cast<std::uint64_t>(now);
  hdr.cell_id = bs_.config().cell_id;
  return std::make_pair(e2sm::sm_encode(hdr, fmt_),
                        e2sm::sm_encode(msg, fmt_));
}

// ---------------------------------------------------------------------------
// RlcStatsFunction
// ---------------------------------------------------------------------------

RlcStatsFunction::RlcStatsFunction(BaseStation& bs, WireFormat fmt)
    : PeriodicReportBase(fmt), bs_(bs) {
  desc_ = e2sm::make_ran_function<e2sm::rlc::Sm>();
}

std::optional<std::pair<Buffer, Buffer>> RlcStatsFunction::produce(
    const SubState& sub, Nanos now) {
  e2sm::rlc::ActionDef def;
  if (!sub.action_def.empty()) {
    auto d = e2sm::sm_decode<e2sm::rlc::ActionDef>(sub.action_def, fmt_);
    if (d) def = std::move(*d);
  }
  auto msg = bs_.rlc_stats(def.rnti_filter);
  if (services_ != nullptr)
    std::erase_if(msg.bearers, [&](const e2sm::rlc::BearerStats& s) {
      return !services_->ue_visible(s.rnti, sub.origin);
    });
  e2sm::rlc::IndicationHdr hdr;
  hdr.tstamp_ns = static_cast<std::uint64_t>(now);
  hdr.cell_id = bs_.config().cell_id;
  return std::make_pair(e2sm::sm_encode(hdr, fmt_),
                        e2sm::sm_encode(msg, fmt_));
}

// ---------------------------------------------------------------------------
// PdcpStatsFunction
// ---------------------------------------------------------------------------

PdcpStatsFunction::PdcpStatsFunction(BaseStation& bs, WireFormat fmt)
    : PeriodicReportBase(fmt), bs_(bs) {
  desc_ = e2sm::make_ran_function<e2sm::pdcp::Sm>();
}

std::optional<std::pair<Buffer, Buffer>> PdcpStatsFunction::produce(
    const SubState& sub, Nanos now) {
  e2sm::pdcp::ActionDef def;
  if (!sub.action_def.empty()) {
    auto d = e2sm::sm_decode<e2sm::pdcp::ActionDef>(sub.action_def, fmt_);
    if (d) def = std::move(*d);
  }
  auto msg = bs_.pdcp_stats(def.rnti_filter);
  if (services_ != nullptr)
    std::erase_if(msg.bearers, [&](const e2sm::pdcp::BearerStats& s) {
      return !services_->ue_visible(s.rnti, sub.origin);
    });
  e2sm::pdcp::IndicationHdr hdr;
  hdr.tstamp_ns = static_cast<std::uint64_t>(now);
  hdr.cell_id = bs_.config().cell_id;
  return std::make_pair(e2sm::sm_encode(hdr, fmt_),
                        e2sm::sm_encode(msg, fmt_));
}

// ---------------------------------------------------------------------------
// KpmFunction
// ---------------------------------------------------------------------------

KpmFunction::KpmFunction(BaseStation& bs, WireFormat fmt)
    : PeriodicReportBase(fmt), bs_(bs) {
  desc_ = e2sm::make_ran_function<e2sm::kpm::Sm>();
}

std::optional<std::pair<Buffer, Buffer>> KpmFunction::produce(
    const SubState& sub, Nanos now) {
  auto msg = bs_.kpm_stats();
  if (!sub.action_def.empty()) {
    auto d = e2sm::sm_decode<e2sm::kpm::ActionDef>(sub.action_def, fmt_);
    if (d && !d->metric_names.empty()) {
      std::erase_if(msg.metrics, [&](const e2sm::kpm::Metric& m) {
        return std::find(d->metric_names.begin(), d->metric_names.end(),
                         m.name) == d->metric_names.end();
      });
    }
  }
  e2sm::kpm::IndicationHdr hdr;
  hdr.tstamp_ns = static_cast<std::uint64_t>(now);
  hdr.cell_id = bs_.config().cell_id;
  hdr.granularity_ms = sub.period_ms;
  return std::make_pair(e2sm::sm_encode(hdr, fmt_),
                        e2sm::sm_encode(msg, fmt_));
}

// ---------------------------------------------------------------------------
// RrcFunction
// ---------------------------------------------------------------------------

RrcFunction::RrcFunction(BaseStation& bs, WireFormat fmt)
    : bs_(bs), fmt_(fmt) {
  desc_ = e2sm::make_ran_function<e2sm::rrc::Sm>();
  bs_.set_on_rrc_event(
      [this](const e2sm::rrc::IndicationMsg& ev) { emit(ev); });
}

Result<SubscriptionOutcome> RrcFunction::on_subscription(
    const e2ap::SubscriptionRequest& req, ControllerId origin) {
  auto trigger = e2sm::sm_decode<e2sm::EventTrigger>(req.event_trigger, fmt_);
  if (!trigger) return trigger.error();
  if (trigger->kind != e2sm::TriggerKind::on_event)
    return Error{Errc::unsupported, "RRC SM is on-event only"};
  SubscriptionOutcome outcome;
  for (const auto& action : req.actions) {
    if (action.type != e2ap::ActionType::report) {
      outcome.not_admitted.emplace_back(
          action.id, e2ap::Cause{e2ap::Cause::Group::ric, 1});
      continue;
    }
    SubState st;
    st.origin = origin;
    st.request = req.request;
    st.action_id = action.id;
    if (!action.definition.empty()) {
      auto d = e2sm::sm_decode<e2sm::rrc::ActionDef>(action.definition, fmt_);
      if (d) st.def = *d;
    }
    subs_.push_back(st);
    outcome.admitted.push_back(action.id);
  }
  if (outcome.admitted.empty())
    return Error{Errc::rejected, "no admissible action"};
  return outcome;
}

Status RrcFunction::on_subscription_delete(
    const e2ap::SubscriptionDeleteRequest& req, ControllerId origin) {
  auto n = std::erase_if(subs_, [&](const SubState& s) {
    return s.origin == origin && s.request == req.request;
  });
  return n > 0 ? Status::ok() : Status{Errc::not_found, "unknown sub"};
}

void RrcFunction::on_controller_detached(ControllerId origin) {
  std::erase_if(subs_, [&](const SubState& s) { return s.origin == origin; });
}

void RrcFunction::emit(const e2sm::rrc::IndicationMsg& ev) {
  if (services_ == nullptr) return;
  for (auto& sub : subs_) {
    if (ev.kind == e2sm::rrc::EventKind::attach && !sub.def.attach_events)
      continue;
    if (ev.kind == e2sm::rrc::EventKind::detach && !sub.def.detach_events)
      continue;
    e2sm::rrc::IndicationHdr hdr;
    hdr.tstamp_ns = static_cast<std::uint64_t>(bs_.now());
    hdr.cell_id = bs_.config().cell_id;
    e2ap::Indication ind;
    ind.request = sub.request;
    ind.ran_function_id = desc_.id;
    ind.action_id = sub.action_id;
    ind.sn = sub.sn++;
    ind.type = e2ap::ActionType::report;
    ind.header = e2sm::sm_encode(hdr, fmt_);
    ind.message = e2sm::sm_encode(ev, fmt_);
    (void)services_->send_indication(sub.origin, ind);
  }
}

// ---------------------------------------------------------------------------
// SliceCtrlFunction
// ---------------------------------------------------------------------------

SliceCtrlFunction::SliceCtrlFunction(BaseStation& bs, WireFormat fmt)
    : PeriodicReportBase(fmt), bs_(bs) {
  desc_ = e2sm::make_ran_function<e2sm::slice::Sm>();
}

Result<Buffer> SliceCtrlFunction::on_control(const e2ap::ControlRequest& req,
                                             ControllerId origin) {
  auto msg = e2sm::sm_decode<e2sm::slice::CtrlMsg>(req.message, fmt_);
  if (!msg) return msg.error();
  // Per-controller admission: additional controllers may only touch UEs
  // exposed to them (§4.1.2 SLA note).
  if (services_ != nullptr && msg->kind == e2sm::slice::CtrlKind::assoc_ue) {
    for (const auto& a : msg->assoc)
      if (!services_->ue_visible(a.rnti, origin))
        return Error{Errc::rejected, "UE not exposed to this controller"};
  }
  Status st = bs_.mac().apply(*msg);
  e2sm::slice::CtrlOutcome outcome;
  outcome.success = st.is_ok();
  outcome.diagnostic = st.is_ok() ? "" : st.to_string();
  if (!st.is_ok())
    LOG_DEBUG("slice-sm", "control rejected: %s", st.to_string().c_str());
  return e2sm::sm_encode(outcome, fmt_);
}

std::optional<std::pair<Buffer, Buffer>> SliceCtrlFunction::produce(
    const SubState& sub, Nanos now) {
  auto msg = bs_.mac().status_report(/*reset_period=*/true);
  if (services_ != nullptr) {
    std::erase_if(msg.assoc, [&](const e2sm::slice::UeSliceAssoc& a) {
      return !services_->ue_visible(a.rnti, sub.origin);
    });
  }
  e2sm::slice::IndicationHdr hdr;
  hdr.tstamp_ns = static_cast<std::uint64_t>(now);
  hdr.cell_id = bs_.config().cell_id;
  return std::make_pair(e2sm::sm_encode(hdr, fmt_),
                        e2sm::sm_encode(msg, fmt_));
}

// ---------------------------------------------------------------------------
// TcCtrlFunction
// ---------------------------------------------------------------------------

TcCtrlFunction::TcCtrlFunction(BaseStation& bs, WireFormat fmt)
    : PeriodicReportBase(fmt), bs_(bs) {
  desc_ = e2sm::make_ran_function<e2sm::tc::Sm>();
}

Result<Buffer> TcCtrlFunction::on_control(const e2ap::ControlRequest& req,
                                          ControllerId origin) {
  auto msg = e2sm::sm_decode<e2sm::tc::CtrlMsg>(req.message, fmt_);
  if (!msg) return msg.error();
  if (services_ != nullptr && !services_->ue_visible(msg->rnti, origin))
    return Error{Errc::rejected, "UE not exposed to this controller"};
  tc::TcChain* chain = bs_.tc_chain(msg->rnti, msg->drb_id);
  if (chain == nullptr)
    return Error{Errc::not_found, "no such bearer"};
  Status st = Status::ok();
  switch (msg->kind) {
    case e2sm::tc::CtrlKind::add_queue: st = chain->add_queue(msg->queue); break;
    case e2sm::tc::CtrlKind::del_queue: st = chain->del_queue(msg->del_id); break;
    case e2sm::tc::CtrlKind::add_filter: st = chain->add_filter(msg->filter); break;
    case e2sm::tc::CtrlKind::del_filter: st = chain->del_filter(msg->del_id); break;
    case e2sm::tc::CtrlKind::sched_conf: chain->set_sched(msg->sched); break;
    case e2sm::tc::CtrlKind::pacer_conf: chain->set_pacer(msg->pacer); break;
  }
  e2sm::tc::CtrlOutcome outcome;
  outcome.success = st.is_ok();
  outcome.diagnostic = st.is_ok() ? "" : st.to_string();
  return e2sm::sm_encode(outcome, fmt_);
}

Result<SubscriptionOutcome> TcCtrlFunction::on_subscription(
    const e2ap::SubscriptionRequest& req, ControllerId origin) {
  // Split POLICY actions (agent-local automation) from REPORT actions
  // (periodic statistics, handled by the base class).
  e2ap::SubscriptionRequest report_req = req;
  report_req.actions.clear();
  SubscriptionOutcome outcome;
  std::vector<PolicyState> accepted_policies;
  for (const auto& action : req.actions) {
    if (action.type == e2ap::ActionType::policy) {
      auto def = e2sm::sm_decode<e2sm::tc::PolicyDef>(action.definition, fmt_);
      if (!def) {
        outcome.not_admitted.emplace_back(
            action.id, e2ap::Cause{e2ap::Cause::Group::ric, 1});
        continue;
      }
      accepted_policies.push_back({origin, req.request, *def});
      outcome.admitted.push_back(action.id);
    } else {
      report_req.actions.push_back(action);
    }
  }
  if (!report_req.actions.empty()) {
    auto base = PeriodicReportBase::on_subscription(report_req, origin);
    if (base) {
      outcome.admitted.insert(outcome.admitted.end(), base->admitted.begin(),
                              base->admitted.end());
      outcome.not_admitted.insert(outcome.not_admitted.end(),
                                  base->not_admitted.begin(),
                                  base->not_admitted.end());
    } else if (accepted_policies.empty()) {
      return base.error();
    }
  }
  if (outcome.admitted.empty())
    return Error{Errc::rejected, "no admissible action"};
  for (auto& p : accepted_policies) policies_.push_back(std::move(p));
  return outcome;
}

Status TcCtrlFunction::on_subscription_delete(
    const e2ap::SubscriptionDeleteRequest& req, ControllerId origin) {
  auto removed = std::erase_if(policies_, [&](const PolicyState& p) {
    return p.origin == origin && p.request == req.request;
  });
  Status base = PeriodicReportBase::on_subscription_delete(req, origin);
  return (removed > 0 || base.is_ok())
             ? Status::ok()
             : Status{Errc::not_found, "unknown subscription"};
}

void TcCtrlFunction::on_controller_detached(ControllerId origin) {
  std::erase_if(policies_,
                [&](const PolicyState& p) { return p.origin == origin; });
  PeriodicReportBase::on_controller_detached(origin);
}

void TcCtrlFunction::on_tti(Nanos now) {
  PeriodicReportBase::on_tti(now);
  if (!policies_.empty()) enforce_policies(now);
}

void TcCtrlFunction::enforce_policies(Nanos now) {
  (void)now;
  for (const PolicyState& policy : policies_) {
    for (std::uint16_t rnti : bs_.ues()) {
      if (services_ != nullptr && !services_->ue_visible(rnti, policy.origin))
        continue;
      for (std::uint8_t drb = 1; drb <= 4; ++drb) {
        tc::TcChain* chain = bs_.tc_chain(rnti, drb);
        if (chain == nullptr) continue;
        if (chain->pacer().kind == e2sm::tc::PacerKind::bdp)
          continue;  // already enforced
        if (bs_.rlc_head_sojourn_ms(rnti, drb) > policy.def.sojourn_limit_ms) {
          e2sm::tc::PacerConf pacer;
          pacer.kind = e2sm::tc::PacerKind::bdp;
          pacer.target_ms = policy.def.pacer_target_ms;
          chain->set_pacer(pacer);
          LOG_INFO("tc-sm",
                   "policy: sojourn beyond %.1f ms on rnti %u drb %u — "
                   "BDP pacer applied locally",
                   policy.def.sojourn_limit_ms, rnti, drb);
        }
      }
    }
  }
}

std::optional<std::pair<Buffer, Buffer>> TcCtrlFunction::produce(
    const SubState& sub, Nanos now) {
  // Reports the TC state of every visible bearer; the header names the
  // first reported bearer (single-UE experiments have exactly one).
  e2sm::tc::IndicationMsg msg;
  e2sm::tc::IndicationHdr hdr;
  hdr.tstamp_ns = static_cast<std::uint64_t>(now);
  for (std::uint16_t rnti : bs_.ues()) {
    if (services_ != nullptr && !services_->ue_visible(rnti, sub.origin))
      continue;
    for (std::uint8_t drb = 1; drb <= 4; ++drb) {
      tc::TcChain* chain = bs_.tc_chain(rnti, drb);
      if (chain == nullptr) continue;
      if (hdr.rnti == 0) {
        hdr.rnti = rnti;
        hdr.drb_id = drb;
      }
      auto stats = chain->stats_snapshot(/*reset_period=*/true);
      msg.queues.insert(msg.queues.end(), stats.begin(), stats.end());
      msg.pacer_rate_mbps = chain->pacer_rate_mbps();
    }
  }
  return std::make_pair(e2sm::sm_encode(hdr, fmt_),
                        e2sm::sm_encode(msg, fmt_));
}

// ---------------------------------------------------------------------------
// HwFunction
// ---------------------------------------------------------------------------

HwFunction::HwFunction(WireFormat fmt) : fmt_(fmt) {
  desc_ = e2sm::make_ran_function<e2sm::hw::Sm>();
}

Result<SubscriptionOutcome> HwFunction::on_subscription(
    const e2ap::SubscriptionRequest& req, ControllerId origin) {
  SubscriptionOutcome outcome;
  SubState st;
  st.request = req.request;
  for (const auto& action : req.actions) {
    outcome.admitted.push_back(action.id);
    st.action_id = action.id;
  }
  if (outcome.admitted.empty())
    return Error{Errc::rejected, "no action"};
  subs_[origin] = st;
  return outcome;
}

Status HwFunction::on_subscription_delete(
    const e2ap::SubscriptionDeleteRequest& req, ControllerId origin) {
  auto it = subs_.find(origin);
  if (it == subs_.end() || !(it->second.request == req.request))
    return {Errc::not_found, "unknown subscription"};
  subs_.erase(it);
  return Status::ok();
}

void HwFunction::on_controller_detached(ControllerId origin) {
  subs_.erase(origin);
}

Result<Buffer> HwFunction::on_control(const e2ap::ControlRequest& req,
                                      ControllerId origin) {
  auto ping = e2sm::sm_decode<e2sm::hw::Ping>(req.message, fmt_);
  if (!ping) return ping.error();
  auto it = subs_.find(origin);
  if (it == subs_.end())
    return Error{Errc::rejected, "no pong subscription installed"};
  e2sm::hw::Pong pong;
  pong.seq = ping->seq;
  pong.ping_sent_ns = ping->sent_ns;
  pong.payload = std::move(ping->payload);
  e2sm::hw::IndicationHdr hdr;
  hdr.tstamp_ns = static_cast<std::uint64_t>(mono_now());
  e2ap::Indication ind;
  ind.request = it->second.request;
  ind.ran_function_id = desc_.id;
  ind.action_id = it->second.action_id;
  ind.sn = it->second.sn++;
  ind.type = e2ap::ActionType::report;
  ind.header = e2sm::sm_encode(hdr, fmt_);
  ind.message = e2sm::sm_encode(pong, fmt_);
  if (services_ != nullptr) (void)services_->send_indication(origin, ind);
  return Buffer{};  // empty control outcome
}

// ---------------------------------------------------------------------------
// AssocFunction
// ---------------------------------------------------------------------------

AssocFunction::AssocFunction(WireFormat fmt) : fmt_(fmt) {
  desc_ = e2sm::make_ran_function<e2sm::assoc::Sm>();
}

Result<Buffer> AssocFunction::on_control(const e2ap::ControlRequest& req,
                                         ControllerId origin) {
  auto msg = e2sm::sm_decode<e2sm::assoc::CtrlMsg>(req.message, fmt_);
  if (!msg) return msg.error();
  // Only the primary (infrastructure) controller may rewire associations;
  // a specialized controller must not widen its own visibility.
  e2sm::assoc::CtrlOutcome outcome;
  if (origin != 0) {
    outcome.success = false;
    outcome.diagnostic = "only the primary controller manages associations";
    return e2sm::sm_encode(outcome, fmt_);
  }
  if (services_ != nullptr) {
    if (msg->kind == e2sm::assoc::CtrlKind::associate)
      services_->associate_ue(msg->rnti, msg->controller_index);
    else
      services_->dissociate_ue(msg->rnti, msg->controller_index);
  }
  return e2sm::sm_encode(outcome, fmt_);
}

// ---------------------------------------------------------------------------
// BsFunctionBundle
// ---------------------------------------------------------------------------

BsFunctionBundle::BsFunctionBundle(BaseStation& bs, agent::E2Agent& agent,
                                   WireFormat sm_fmt) {
  mac_ = std::make_shared<MacStatsFunction>(bs, sm_fmt);
  rlc_ = std::make_shared<RlcStatsFunction>(bs, sm_fmt);
  pdcp_ = std::make_shared<PdcpStatsFunction>(bs, sm_fmt);
  kpm_ = std::make_shared<KpmFunction>(bs, sm_fmt);
  rrc_ = std::make_shared<RrcFunction>(bs, sm_fmt);
  slice_ = std::make_shared<SliceCtrlFunction>(bs, sm_fmt);
  tc_ = std::make_shared<TcCtrlFunction>(bs, sm_fmt);
  (void)agent.register_function(mac_);
  (void)agent.register_function(rlc_);
  (void)agent.register_function(pdcp_);
  (void)agent.register_function(kpm_);
  (void)agent.register_function(rrc_);
  (void)agent.register_function(slice_);
  (void)agent.register_function(tc_);
}

void BsFunctionBundle::on_tti(Nanos now) {
  mac_->on_tti(now);
  rlc_->on_tti(now);
  pdcp_->on_tti(now);
  kpm_->on_tti(now);
  slice_->on_tti(now);
  tc_->on_tti(now);
}

}  // namespace flexric::ran
