// RLC entity (one per DRB): the large downlink buffer in front of the radio
// link where bufferbloat happens (§6.1.1: "the RLC sublayer is provided with
// large buffers to absorb the brusque changes that the radio channel may
// suffer").
//
// Models an AM-mode byte queue with segmentation (the MAC pulls arbitrary
// byte grants; a packet leaves when its last byte is served) and per-packet
// sojourn tracking, which feeds the RLC stats SM.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/clock.hpp"
#include "ran/packet.hpp"

namespace flexric::ran {

class RlcEntity {
 public:
  /// Default limit mirrors OAI's generous DRB buffers (enough to bloat).
  explicit RlcEntity(std::uint32_t limit_bytes = 2 * 1024 * 1024)
      : limit_bytes_(limit_bytes) {}

  /// Enqueue an SDU; returns false (tail drop) when the buffer is full —
  /// the loss signal a Cubic-like sender reacts to.
  bool enqueue(Packet p, Nanos now);

  /// Serve up to `grant_bytes` towards the UE. Packets whose last byte was
  /// transmitted this TTI are returned (their sojourn ends now);
  /// `used_bytes` reports the grant actually consumed.
  std::vector<Packet> pull(std::uint32_t grant_bytes, Nanos now,
                           std::uint32_t* used_bytes);

  [[nodiscard]] std::uint32_t buffer_bytes() const noexcept {
    return buffer_bytes_;
  }
  [[nodiscard]] std::uint32_t buffer_pkts() const noexcept {
    return static_cast<std::uint32_t>(q_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::uint32_t limit_bytes() const noexcept {
    return limit_bytes_;
  }
  void set_limit_bytes(std::uint32_t limit) noexcept { limit_bytes_ = limit; }

  /// Sojourn time of the oldest queued packet (0 when empty) — the "head
  /// of line delay" a controller watches for bloat.
  [[nodiscard]] double head_sojourn_ms(Nanos now) const noexcept;

  /// Cumulative + per-period statistics for the RLC stats SM.
  struct Stats {
    std::uint64_t tx_bytes = 0;    // cumulative, towards MAC
    std::uint64_t rx_bytes = 0;    // cumulative, from PDCP
    std::uint32_t tx_pdus = 0;
    std::uint32_t rx_sdus = 0;
    std::uint32_t dropped_sdus = 0;
    // period (since last snapshot):
    double sojourn_sum_ms = 0.0;
    double sojourn_max_ms = 0.0;
    std::uint32_t sojourn_count = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Average/max sojourn over the period, then reset the period window.
  void snapshot_period(double* avg_ms, double* max_ms);

 private:
  std::uint32_t limit_bytes_;
  std::uint32_t buffer_bytes_ = 0;
  std::uint32_t head_sent_ = 0;  ///< bytes of the head packet already served
  std::deque<Packet> q_;
  Stats stats_;
};

}  // namespace flexric::ran
