// Base-station user-plane simulator.
//
// Replaces the paper's OAI eNB/gNB (see DESIGN.md substitutions): a
// TTI-accurate downlink L2 with the sublayer chain the agent SMs hook into:
//
//   ingress → SDAP (DRB routing) → PDCP → TC chain → RLC → MAC → UE
//
// The MAC runs the SC-SM-driven MacScheduler (slice scheduler + UE
// schedulers); each DRB has a TC chain the TC SM reconfigures. Statistics
// are produced in exactly the shapes the monitoring SMs export.
//
// Time is virtual: the owner calls tick(now) once per TTI (1 ms), so
// experiments run deterministic and faster than real time.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "common/rng.hpp"
#include "e2sm/kpm_sm.hpp"
#include "e2sm/mac_sm.hpp"
#include "e2sm/pdcp_sm.hpp"
#include "e2sm/rlc_sm.hpp"
#include "e2sm/rrc_sm.hpp"
#include "ran/channel.hpp"
#include "ran/config.hpp"
#include "ran/pdcp.hpp"
#include "ran/rlc.hpp"
#include "ran/sched.hpp"
#include "tc/chain.hpp"

namespace flexric::ran {

class BaseStation {
 public:
  struct UeConfig {
    std::uint16_t rnti = 0;
    std::uint32_t plmn = 0;
    std::uint32_t s_nssai = 0;
    std::uint8_t initial_cqi = 15;
    std::optional<std::uint8_t> fixed_mcs;  ///< pin MCS (paper's setup)
  };

  BaseStation(CellConfig cfg, std::uint64_t seed = 1);

  // -- UE lifecycle (drives RRC events) --
  Status attach_ue(const UeConfig& cfg);
  Status detach_ue(std::uint16_t rnti);
  [[nodiscard]] std::vector<std::uint16_t> ues() const;
  [[nodiscard]] bool has_ue(std::uint16_t rnti) const {
    return ues_.count(rnti) > 0;
  }

  /// RRC connection events (consumed by the RRC SM RAN function).
  using RrcHandler = std::function<void(const e2sm::rrc::IndicationMsg&)>;
  void set_on_rrc_event(RrcHandler h) { on_rrc_ = std::move(h); }

  // -- downlink datapath --
  /// Inject a downlink IP packet for (rnti, drb). Returns false if the UE
  /// is unknown or the TC queue dropped it.
  bool deliver_downlink(std::uint16_t rnti, std::uint8_t drb, Packet p);

  /// Packets that finished transmission over the air this TTI.
  using DeliveryHandler =
      std::function<void(std::uint16_t rnti, const Packet& p, Nanos now)>;
  void set_on_delivery(DeliveryHandler h) { on_delivery_ = std::move(h); }

  /// Packets lost inside the RAN (RLC buffer overflow during TC drain).
  using DropHandler = std::function<void(std::uint16_t rnti, const Packet&)>;
  void set_on_drop(DropHandler h) { on_drop_ = std::move(h); }

  /// Advance one TTI ending at virtual time `now`.
  void tick(Nanos now);

  // -- control-plane access for RAN functions --
  MacScheduler& mac() noexcept { return mac_; }
  /// TC chain of a bearer (nullptr if absent).
  tc::TcChain* tc_chain(std::uint16_t rnti, std::uint8_t drb);
  /// Sojourn of the oldest packet waiting in a bearer's RLC buffer, in ms
  /// (0 if empty/absent). Side-effect-free, usable by policy enforcement.
  [[nodiscard]] double rlc_head_sojourn_ms(std::uint16_t rnti,
                                           std::uint8_t drb) const;

  // -- statistics in SM shape --
  e2sm::mac::IndicationMsg mac_stats(bool include_harq,
                                     const std::vector<std::uint16_t>& filter);
  e2sm::rlc::IndicationMsg rlc_stats(const std::vector<std::uint16_t>& filter);
  e2sm::pdcp::IndicationMsg pdcp_stats(
      const std::vector<std::uint16_t>& filter);
  e2sm::kpm::IndicationMsg kpm_stats();

  /// Downlink MAC throughput (Mbps) of one UE since the last call with
  /// reset; used by the figure benches.
  double ue_throughput_mbps(std::uint16_t rnti, Nanos window, bool reset);

  [[nodiscard]] const CellConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Nanos now() const noexcept { return now_; }

 private:
  struct Bearer {
    PdcpEntity pdcp;
    tc::TcChain tc;
    RlcEntity rlc;
    double service_rate_mbps = 0.0;  ///< EWMA of MAC service, feeds the pacer
    std::uint64_t period_bytes = 0;
  };

  struct UeCtx {
    UeConfig cfg;
    ChannelModel channel;
    std::map<std::uint8_t, Bearer> bearers;
    // period accounting for MAC stats / throughput probes
    std::uint32_t period_prbs = 0;
    std::uint64_t period_bytes = 0;
    std::uint64_t probe_bytes = 0;  ///< window for ue_throughput_mbps
    std::uint32_t period_harq_retx = 0;
    std::uint8_t last_mcs = 0;
  };

  [[nodiscard]] std::uint8_t current_mcs(const UeCtx& ue) const;
  Bearer& get_or_create_bearer(UeCtx& ue, std::uint16_t rnti,
                               std::uint8_t drb);

  CellConfig cfg_;
  MacScheduler mac_;
  std::map<std::uint16_t, UeCtx> ues_;
  RrcHandler on_rrc_;
  DeliveryHandler on_delivery_;
  DropHandler on_drop_;
  Rng rng_;
  Nanos now_ = 0;
  // cell-level period accounting for KPM
  std::uint64_t cell_period_bytes_ = 0;
  std::uint64_t cell_period_prbs_ = 0;
  std::uint64_t cell_period_ttis_ = 0;
};

}  // namespace flexric::ran
