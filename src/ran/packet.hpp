// The simulated IP packet flowing through SDAP → TC → PDCP → RLC → MAC.
//
// Payload bytes are not materialized (only sizes matter for the evaluation);
// per-packet metadata carries the 5-tuple for TC classification and the
// timestamps from which sojourn times and RTTs are computed.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "e2sm/tc_sm.hpp"

namespace flexric::ran {

struct Packet {
  std::uint32_t size_bytes = 0;
  e2sm::tc::FiveTuple tuple;     ///< for the TC classifier
  std::uint64_t flow_id = 0;     ///< traffic generator bookkeeping
  std::uint32_t seq = 0;         ///< per-flow sequence number
  Nanos created = 0;             ///< when the source emitted it (virtual time)
  Nanos enqueued = 0;            ///< when it entered the current queue
};

}  // namespace flexric::ran
