#include "ran/sched.hpp"

#include <algorithm>
#include <cmath>

namespace flexric::ran {

using e2sm::slice::Algo;
using e2sm::slice::CtrlKind;
using e2sm::slice::NvsKind;
using e2sm::slice::UeSched;

// ---------------------------------------------------------------------------
// UE schedulers
// ---------------------------------------------------------------------------

namespace {

/// Round robin: equal PRBs, remainder rotates with a persistent cursor.
class RrScheduler final : public UeScheduler {
 public:
  void allocate(const std::vector<UeInput>& ues, std::uint32_t prbs,
                std::uint32_t slice_id, std::vector<Alloc>& out) override {
    if (ues.empty() || prbs == 0) return;
    std::uint32_t n = static_cast<std::uint32_t>(ues.size());
    std::uint32_t base = prbs / n;
    std::uint32_t extra = prbs % n;
    for (std::uint32_t i = 0; i < n; ++i) {
      const UeInput& ue = ues[(cursor_ + i) % n];
      std::uint32_t grant = base + (i < extra ? 1 : 0);
      if (grant == 0) continue;
      out.push_back({ue.rnti, grant,
                     transport_block_bits(ue.mcs, grant) / 8, slice_id});
    }
    cursor_ = (cursor_ + 1) % n;
  }

 private:
  std::uint32_t cursor_ = 0;
};

/// Proportional fair: weight = instantaneous rate / average served rate.
/// PRBs are split proportionally to weights; averages update with the
/// delivered amounts (classic PF in its resource-share form, which equally
/// splits resources between UEs at equal average rates — the behaviour the
/// paper's Fig. 13 relies on).
class PfScheduler final : public UeScheduler {
 public:
  void allocate(const std::vector<UeInput>& ues, std::uint32_t prbs,
                std::uint32_t slice_id, std::vector<Alloc>& out) override {
    if (ues.empty() || prbs == 0) return;
    std::vector<double> weight(ues.size());
    double total = 0.0;
    for (std::size_t i = 0; i < ues.size(); ++i) {
      double inst = mcs_efficiency(ues[i].mcs);
      double& avg = avg_rate_[ues[i].rnti];
      if (avg <= 0.0) avg = inst * 0.01;  // bootstrap
      weight[i] = inst / avg;
      total += weight[i];
    }
    std::uint32_t assigned = 0;
    for (std::size_t i = 0; i < ues.size(); ++i) {
      std::uint32_t grant = static_cast<std::uint32_t>(
          std::floor(static_cast<double>(prbs) * weight[i] / total));
      if (i == ues.size() - 1) grant = prbs - assigned;  // no PRB wasted
      grant = std::min(grant, prbs - assigned);
      assigned += grant;
      std::uint32_t tb = transport_block_bits(ues[i].mcs, grant) / 8;
      if (grant > 0)
        out.push_back({ues[i].rnti, grant, tb, slice_id});
      // EWMA update (also for zero grants, so starved UEs gain priority)
      double served = static_cast<double>(grant) * mcs_efficiency(ues[i].mcs);
      double& avg = avg_rate_[ues[i].rnti];
      avg = (1.0 - kAlpha) * avg + kAlpha * served;
    }
  }

 private:
  static constexpr double kAlpha = 0.05;
  std::map<std::uint16_t, double> avg_rate_;
};

/// Max throughput: the UE with the best MCS takes everything.
class MtScheduler final : public UeScheduler {
 public:
  void allocate(const std::vector<UeInput>& ues, std::uint32_t prbs,
                std::uint32_t slice_id, std::vector<Alloc>& out) override {
    if (ues.empty() || prbs == 0) return;
    const UeInput* best = &ues.front();
    for (const auto& ue : ues)
      if (ue.mcs > best->mcs) best = &ue;
    out.push_back({best->rnti, prbs,
                   transport_block_bits(best->mcs, prbs) / 8, slice_id});
  }
};

}  // namespace

std::unique_ptr<UeScheduler> make_ue_scheduler(UeSched kind) {
  switch (kind) {
    case UeSched::rr: return std::make_unique<RrScheduler>();
    case UeSched::pf: return std::make_unique<PfScheduler>();
    case UeSched::mt: return std::make_unique<MtScheduler>();
  }
  return std::make_unique<PfScheduler>();
}

// ---------------------------------------------------------------------------
// MacScheduler
// ---------------------------------------------------------------------------

MacScheduler::MacScheduler(const CellConfig& cfg) : cfg_(cfg) {
  // Slice 0: the default slice holding unassociated UEs. Under `none` it is
  // the whole cell; under NVS it competes with whatever share is left
  // implicit (target share 0 -> only scheduled when others idle).
  SliceRuntime def;
  def.conf.id = 0;
  def.conf.label = "default";
  def.conf.ue_sched = UeSched::pf;
  def.conf.nvs.kind = NvsKind::capacity;
  def.conf.nvs.capacity_share = 1.0;
  def.ue_sched = make_ue_scheduler(UeSched::pf);
  slices_.emplace(0u, std::move(def));
}

MacScheduler::SliceRuntime& MacScheduler::default_slice() {
  return slices_.at(0);
}

double MacScheduler::admission_load(
    const std::vector<e2sm::slice::SliceConf>& upserts,
    const std::vector<std::uint32_t>& removals) const {
  double load = 0.0;
  auto contribution = [](const e2sm::slice::SliceConf& c) {
    if (c.nvs.kind == NvsKind::capacity) return c.nvs.capacity_share;
    if (c.nvs.ref_rate_mbps <= 0.0) return 1.0;  // malformed: max load
    return c.nvs.rate_mbps / c.nvs.ref_rate_mbps;
  };
  for (const auto& [id, s] : slices_) {
    if (id == 0) continue;  // default slice does not count against NVS
    bool removed = std::find(removals.begin(), removals.end(), id) !=
                   removals.end();
    bool replaced = std::any_of(upserts.begin(), upserts.end(),
                                [&](const auto& c) { return c.id == id; });
    if (!removed && !replaced) load += contribution(s.conf);
  }
  for (const auto& c : upserts)
    if (c.id != 0) load += contribution(c);
  return load;
}

Status MacScheduler::apply(const e2sm::slice::CtrlMsg& msg) {
  switch (msg.kind) {
    case CtrlKind::add_mod: {
      // NVS admission control: Σ c_s + Σ r_rsv/r_ref <= 1.
      if (msg.algo == Algo::nvs &&
          admission_load(msg.slices, {}) > 1.0 + 1e-9)
        return {Errc::rejected, "NVS admission control: total share > 1"};
      if (msg.algo == Algo::static_rb) {
        std::uint64_t total = 0;
        for (const auto& c : msg.slices) total += c.static_rb.rb_count;
        if (total > cfg_.num_prbs)
          return {Errc::rejected, "static partition exceeds cell PRBs"};
      }
      algo_ = msg.algo;
      for (const auto& c : msg.slices) {
        auto it = slices_.find(c.id);
        if (it == slices_.end()) {
          SliceRuntime s;
          s.conf = c;
          s.ue_sched = make_ue_scheduler(c.ue_sched);
          slices_.emplace(c.id, std::move(s));
        } else {
          bool sched_changed = it->second.conf.ue_sched != c.ue_sched;
          it->second.conf = c;
          if (sched_changed)
            it->second.ue_sched = make_ue_scheduler(c.ue_sched);
        }
      }
      return Status::ok();
    }
    case CtrlKind::del: {
      for (std::uint32_t id : msg.del_ids) {
        if (id == 0) return {Errc::rejected, "default slice is permanent"};
        auto it = slices_.find(id);
        if (it == slices_.end()) continue;
        // Orphaned UEs fall back to the default slice.
        for (std::uint16_t rnti : it->second.ues) {
          ue_slice_[rnti] = 0;
          default_slice().ues.insert(rnti);
        }
        slices_.erase(it);
      }
      return Status::ok();
    }
    case CtrlKind::assoc_ue: {
      for (const auto& a : msg.assoc) {
        if (slices_.count(a.slice_id) == 0)
          return {Errc::not_found, "slice does not exist"};
        auto cur = ue_slice_.find(a.rnti);
        if (cur != ue_slice_.end())
          slices_.at(cur->second).ues.erase(a.rnti);
        ue_slice_[a.rnti] = a.slice_id;
        slices_.at(a.slice_id).ues.insert(a.rnti);
      }
      return Status::ok();
    }
  }
  return {Errc::unsupported, "unknown slice control kind"};
}

void MacScheduler::add_ue(std::uint16_t rnti) {
  if (ue_slice_.count(rnti) > 0) return;
  ue_slice_[rnti] = 0;
  default_slice().ues.insert(rnti);
}

void MacScheduler::remove_ue(std::uint16_t rnti) {
  auto it = ue_slice_.find(rnti);
  if (it == ue_slice_.end()) return;
  slices_.at(it->second).ues.erase(rnti);
  ue_slice_.erase(it);
}

std::uint32_t MacScheduler::slice_of(std::uint16_t rnti) const {
  auto it = ue_slice_.find(rnti);
  return it == ue_slice_.end() ? 0 : it->second;
}

double MacScheduler::nvs_weight(const SliceRuntime& s) {
  // NVS weight: target resource share over attained resource share; the
  // slice with the largest ratio wins the subframe. Rate slices map to the
  // effective share r_rsv/r_ref — NVS shows both slice types are equivalent
  // under this normalization (the property Appendix B's virtualization
  // relies on).
  constexpr double kEps = 1e-6;
  double target = s.conf.nvs.kind == NvsKind::capacity
                      ? s.conf.nvs.capacity_share
                      : (s.conf.nvs.ref_rate_mbps > 0
                             ? s.conf.nvs.rate_mbps / s.conf.nvs.ref_rate_mbps
                             : 1.0);
  return target / std::max(s.attained, kEps);
}

void MacScheduler::schedule_slice(SliceRuntime& s,
                                  const std::vector<UeInput>& ues,
                                  std::uint32_t prbs,
                                  std::vector<Alloc>& out) {
  std::vector<UeInput> mine;
  for (const auto& ue : ues)
    if (ue.backlog_bytes > 0 && s.ues.count(ue.rnti) > 0) mine.push_back(ue);
  if (mine.empty()) return;
  std::size_t before = out.size();
  s.ue_sched->allocate(mine, prbs, s.conf.id, out);
  for (std::size_t i = before; i < out.size(); ++i)
    s.period_prbs += out[i].prbs;
}

std::vector<Alloc> MacScheduler::schedule(const std::vector<UeInput>& ues) {
  std::vector<Alloc> out;
  period_total_prbs_ += cfg_.num_prbs;

  auto has_backlog = [&](const SliceRuntime& s) {
    return std::any_of(ues.begin(), ues.end(), [&](const UeInput& ue) {
      return ue.backlog_bytes > 0 && s.ues.count(ue.rnti) > 0;
    });
  };

  switch (algo_) {
    case Algo::none: {
      // No slicing: every UE competes in the default scheduler. UEs
      // associated with (inactive) slices still need service, so pool them.
      std::vector<UeInput> active;
      for (const auto& ue : ues)
        if (ue.backlog_bytes > 0) active.push_back(ue);
      if (!active.empty()) {
        SliceRuntime& def = default_slice();
        std::size_t before = out.size();
        def.ue_sched->allocate(active, cfg_.num_prbs, 0, out);
        for (std::size_t i = before; i < out.size(); ++i)
          def.period_prbs += out[i].prbs;
      }
      break;
    }
    case Algo::static_rb: {
      for (auto& [id, s] : slices_) {
        if (id == 0) continue;
        schedule_slice(s, ues, s.conf.static_rb.rb_count, out);
      }
      break;
    }
    case Algo::nvs: {
      // One slice wins the whole subframe (NVS operates at subframe
      // granularity); EWMA attainment updates for every slice. The default
      // slice (unassociated UEs) competes with the residual share
      // 1 - Σ configured, so configuring slices never starves the rest of
      // the cell — the property Fig. 15's "operator B unaffected" relies on.
      default_slice().conf.nvs.kind = NvsKind::capacity;
      default_slice().conf.nvs.capacity_share =
          std::max(0.01, 1.0 - admission_load({}, {}));
      SliceRuntime* winner = nullptr;
      double best = -1.0;
      for (auto& [id, s] : slices_) {
        if (!has_backlog(s)) continue;
        double w = nvs_weight(s);
        if (w > best) {
          best = w;
          winner = &s;
        }
      }
      if (winner != nullptr) {
        schedule_slice(*winner, ues, cfg_.num_prbs, out);
        winner->period_ttis_scheduled++;
      }
      double tti_s = static_cast<double>(cfg_.tti) /
                     static_cast<double>(kSecond);
      for (auto& [id, s] : slices_) {
        double got = (&s == winner) ? 1.0 : 0.0;
        s.attained = (1.0 - kEwma) * s.attained + kEwma * got;
        double mbps = 0.0;
        if (&s == winner) {
          std::uint64_t bytes = 0;
          for (const auto& a : out)
            if (a.slice_id == id) bytes += a.tb_bytes;
          mbps = static_cast<double>(bytes) * 8.0 / 1e6 / tti_s;
        }
        s.attained_rate = (1.0 - kEwma) * s.attained_rate + kEwma * mbps;
      }
      break;
    }
  }
  return out;
}

e2sm::slice::IndicationMsg MacScheduler::status_report(bool reset_period) {
  e2sm::slice::IndicationMsg msg;
  msg.algo = algo_;
  for (auto& [id, s] : slices_) {
    e2sm::slice::SliceStatus st;
    st.conf = s.conf;
    st.prb_share_used =
        period_total_prbs_ > 0
            ? static_cast<double>(s.period_prbs) /
                  static_cast<double>(period_total_prbs_)
            : 0.0;
    st.num_ues = static_cast<std::uint32_t>(s.ues.size());
    msg.slices.push_back(std::move(st));
    for (std::uint16_t rnti : s.ues) msg.assoc.push_back({rnti, id});
  }
  if (reset_period) {
    for (auto& [id, s] : slices_) s.period_prbs = 0;
    period_total_prbs_ = 0;
  }
  return msg;
}

}  // namespace flexric::ran
