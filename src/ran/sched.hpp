// MAC scheduling: slice scheduler + per-slice UE schedulers (paper Fig. 12).
//
// "Upon the MAC scheduling phase, first the slice scheduler distributes
// resources among slices, and for each selected slice, the corresponding UE
// scheduler distributes resources among the UEs."
//
// Implemented slice algorithms (SC SM `Algo`):
//   none      — no slicing; one implicit slice holding every UE.
//   static_rb — fixed PRB partition per slice (RadioVisor-style sub-grids).
//   nvs       — NVS [Kokku et al., IEEE/ACM ToN 2012]: each TTI the slice
//               with the largest (target share / attained share) ratio wins
//               the whole subframe; an EWMA tracks attainment. Capacity
//               slices target a resource fraction, rate slices a reserved
//               rate over a reference rate; both are admitted while
//               Σ c_s + Σ r_rsv/r_ref ≤ 1 (the NVS admission condition the
//               virtualization layer of §6.2 relies on).
//
// UE schedulers: round robin, proportional fair, max throughput.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/result.hpp"
#include "e2sm/slice_sm.hpp"
#include "ran/config.hpp"

namespace flexric::ran {

/// Scheduling input for one UE in one TTI.
struct UeInput {
  std::uint16_t rnti = 0;
  std::uint8_t mcs = 28;
  std::uint32_t backlog_bytes = 0;  ///< RLC occupancy (0 = nothing to send)
};

/// One UE's downlink grant for this TTI.
struct Alloc {
  std::uint16_t rnti = 0;
  std::uint32_t prbs = 0;
  std::uint32_t tb_bytes = 0;  ///< grant in bytes at the UE's MCS
  std::uint32_t slice_id = 0;
};

/// Per-slice UE scheduler interface.
class UeScheduler {
 public:
  virtual ~UeScheduler() = default;
  /// Distribute `prbs` among `ues` (all with backlog > 0), appending to
  /// `out`. Implementations must be work-conserving within the slice.
  virtual void allocate(const std::vector<UeInput>& ues, std::uint32_t prbs,
                        std::uint32_t slice_id, std::vector<Alloc>& out) = 0;
};

std::unique_ptr<UeScheduler> make_ue_scheduler(e2sm::slice::UeSched kind);

/// The MAC scheduler driven by the SC SM.
class MacScheduler {
 public:
  explicit MacScheduler(const CellConfig& cfg);

  // -- control plane (SC SM) --
  /// Apply a slice control message (add/mod, delete, UE association).
  /// Enforces NVS admission control; rejected configs leave state unchanged.
  Status apply(const e2sm::slice::CtrlMsg& msg);
  /// Current configuration + attained shares for the SC SM indication.
  e2sm::slice::IndicationMsg status_report(bool reset_period);

  // -- UE management --
  void add_ue(std::uint16_t rnti);
  void remove_ue(std::uint16_t rnti);
  /// Slice a UE currently belongs to (slice 0 = default).
  [[nodiscard]] std::uint32_t slice_of(std::uint16_t rnti) const;

  // -- data plane --
  /// Compute this TTI's grants. Only UEs with backlog receive PRBs.
  std::vector<Alloc> schedule(const std::vector<UeInput>& ues);

  [[nodiscard]] e2sm::slice::Algo algo() const noexcept { return algo_; }
  [[nodiscard]] std::size_t num_slices() const noexcept {
    return slices_.size();
  }

 private:
  struct SliceRuntime {
    e2sm::slice::SliceConf conf;
    std::unique_ptr<UeScheduler> ue_sched;
    std::set<std::uint16_t> ues;
    double attained = 0.0;        ///< EWMA of per-TTI resource fraction
    double attained_rate = 0.0;   ///< EWMA of delivered Mbps (rate slices)
    std::uint64_t period_prbs = 0;
    std::uint32_t period_ttis_scheduled = 0;
  };

  /// NVS weight of a slice given its target and attainment.
  static double nvs_weight(const SliceRuntime& s);
  [[nodiscard]] double admission_load(
      const std::vector<e2sm::slice::SliceConf>& upserts,
      const std::vector<std::uint32_t>& removals) const;
  SliceRuntime& default_slice();
  void schedule_slice(SliceRuntime& s, const std::vector<UeInput>& ues,
                      std::uint32_t prbs, std::vector<Alloc>& out);

  CellConfig cfg_;
  e2sm::slice::Algo algo_ = e2sm::slice::Algo::none;
  std::map<std::uint32_t, SliceRuntime> slices_;  // includes slice 0
  std::map<std::uint16_t, std::uint32_t> ue_slice_;
  std::uint32_t period_total_prbs_ = 0;
  static constexpr double kEwma = 0.01;  ///< NVS attainment smoothing
};

}  // namespace flexric::ran
