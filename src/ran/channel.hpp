// Per-UE radio channel model.
//
// A bounded random walk over CQI (a first-order Markov chain), the standard
// lightweight stand-in for fading when no RF hardware is present. The
// evaluation mostly pins the MCS (as the paper does: "MCS is fixed to 20/28
// for all UEs"), but the model is exercised by the channel-variation tests
// and available to experiments.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace flexric::ran {

class ChannelModel {
 public:
  ChannelModel(std::uint8_t initial_cqi, std::uint64_t seed)
      : cqi_(initial_cqi), rng_(seed) {}

  /// Advance one TTI; CQI takes a +-1 step with probability `p_step`.
  std::uint8_t step(double p_step = 0.05) noexcept {
    if (rng_.chance(p_step)) {
      int delta = rng_.chance(0.5) ? 1 : -1;
      int next = static_cast<int>(cqi_) + delta;
      if (next < 1) next = 1;
      if (next > 15) next = 15;
      cqi_ = static_cast<std::uint8_t>(next);
    }
    return cqi_;
  }

  [[nodiscard]] std::uint8_t cqi() const noexcept { return cqi_; }
  void set_cqi(std::uint8_t cqi) noexcept { cqi_ = cqi; }

 private:
  std::uint8_t cqi_;
  Rng rng_;
};

}  // namespace flexric::ran
