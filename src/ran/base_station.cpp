#include "ran/base_station.hpp"

#include <algorithm>

namespace flexric::ran {

BaseStation::BaseStation(CellConfig cfg, std::uint64_t seed)
    : cfg_(cfg), mac_(cfg), rng_(seed) {}

Status BaseStation::attach_ue(const UeConfig& ue_cfg) {
  if (ues_.count(ue_cfg.rnti) > 0)
    return {Errc::already_exists, "rnti in use"};
  UeCtx ctx{ue_cfg, ChannelModel(ue_cfg.initial_cqi, rng_.next()), {}, 0, 0,
            0, 0, 0};
  auto [it, inserted] = ues_.emplace(ue_cfg.rnti, std::move(ctx));
  get_or_create_bearer(it->second, ue_cfg.rnti, 1);  // default DRB 1
  mac_.add_ue(ue_cfg.rnti);
  if (on_rrc_) {
    e2sm::rrc::IndicationMsg ev;
    ev.kind = e2sm::rrc::EventKind::attach;
    ev.rnti = ue_cfg.rnti;
    ev.plmn = ue_cfg.plmn;
    ev.s_nssai = ue_cfg.s_nssai;
    on_rrc_(ev);
  }
  return Status::ok();
}

Status BaseStation::detach_ue(std::uint16_t rnti) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return {Errc::not_found, "unknown rnti"};
  std::uint32_t plmn = it->second.cfg.plmn;
  std::uint32_t s_nssai = it->second.cfg.s_nssai;
  ues_.erase(it);
  mac_.remove_ue(rnti);
  if (on_rrc_) {
    e2sm::rrc::IndicationMsg ev;
    ev.kind = e2sm::rrc::EventKind::detach;
    ev.rnti = rnti;
    ev.plmn = plmn;
    ev.s_nssai = s_nssai;
    on_rrc_(ev);
  }
  return Status::ok();
}

std::vector<std::uint16_t> BaseStation::ues() const {
  std::vector<std::uint16_t> out;
  out.reserve(ues_.size());
  for (const auto& [rnti, ue] : ues_) out.push_back(rnti);
  return out;
}

BaseStation::Bearer& BaseStation::get_or_create_bearer(UeCtx& ue,
                                                        std::uint16_t rnti,
                                                        std::uint8_t drb) {
  auto bit = ue.bearers.find(drb);
  if (bit == ue.bearers.end()) {
    bit = ue.bearers.emplace(drb, Bearer{}).first;
    bit->second.tc.set_drop_handler([this, rnti](const Packet& p) {
      if (on_drop_) on_drop_(rnti, p);
    });
  }
  return bit->second;
}

bool BaseStation::deliver_downlink(std::uint16_t rnti, std::uint8_t drb,
                                   Packet p) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return false;
  Bearer& b = get_or_create_bearer(it->second, rnti, drb);
  Packet pdu = b.pdcp.process_tx(p);
  bool accepted = b.tc.enqueue(pdu, now_);
  if (!accepted) b.pdcp.discard();
  return accepted;
}

tc::TcChain* BaseStation::tc_chain(std::uint16_t rnti, std::uint8_t drb) {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return nullptr;
  auto bit = it->second.bearers.find(drb);
  if (bit == it->second.bearers.end()) return nullptr;
  return &bit->second.tc;
}

double BaseStation::rlc_head_sojourn_ms(std::uint16_t rnti,
                                        std::uint8_t drb) const {
  auto it = ues_.find(rnti);
  if (it == ues_.end()) return 0.0;
  auto bit = it->second.bearers.find(drb);
  if (bit == it->second.bearers.end()) return 0.0;
  return bit->second.rlc.head_sojourn_ms(now_);
}

std::uint8_t BaseStation::current_mcs(const UeCtx& ue) const {
  if (ue.cfg.fixed_mcs) return *ue.cfg.fixed_mcs;
  if (cfg_.vary_channel) return cqi_to_mcs(ue.channel.cqi());
  return cfg_.default_mcs;
}

void BaseStation::tick(Nanos now) {
  now_ = now;
  cell_period_ttis_++;

  // 1. Channel evolution.
  if (cfg_.vary_channel)
    for (auto& [rnti, ue] : ues_) ue.channel.step();

  // 2. TC chains release packets towards the RLC buffers (pacing point).
  for (auto& [rnti, ue] : ues_)
    for (auto& [drb, b] : ue.bearers)
      b.tc.drain(b.rlc, now, b.service_rate_mbps);

  // 3. MAC scheduling over RLC occupancy.
  std::vector<UeInput> inputs;
  inputs.reserve(ues_.size());
  for (auto& [rnti, ue] : ues_) {
    std::uint32_t backlog = 0;
    for (auto& [drb, b] : ue.bearers) backlog += b.rlc.buffer_bytes();
    std::uint8_t mcs = current_mcs(ue);
    ue.last_mcs = mcs;
    inputs.push_back({rnti, mcs, backlog});
  }
  std::vector<Alloc> allocs = mac_.schedule(inputs);

  // 4. Serve grants: drain RLC queues, deliver packets over the air.
  double tti_s =
      static_cast<double>(cfg_.tti) / static_cast<double>(kSecond);
  for (const Alloc& a : allocs) {
    UeCtx& ue = ues_.at(a.rnti);
    ue.period_prbs += a.prbs;
    std::uint32_t grant = a.tb_bytes;
    std::uint64_t served_total = 0;
    for (auto& [drb, b] : ue.bearers) {
      if (grant == 0) break;
      std::uint32_t used = 0;
      std::vector<Packet> done = b.rlc.pull(grant, now, &used);
      grant -= used;
      served_total += used;
      b.period_bytes += used;
      for (const Packet& p : done)
        if (on_delivery_) on_delivery_(a.rnti, p, now);
    }
    ue.period_bytes += served_total;
    ue.probe_bytes += served_total;
    cell_period_bytes_ += served_total;
    cell_period_prbs_ += a.prbs;
    // HARQ model: sparse retransmissions proportional to served traffic.
    if (served_total > 0 && rng_.chance(0.02)) ue.period_harq_retx++;
  }

  // 5. Per-bearer service-rate EWMA (feeds the BDP pacer).
  constexpr double kAlpha = 0.05;
  for (auto& [rnti, ue] : ues_) {
    for (auto& [drb, b] : ue.bearers) {
      double mbps =
          static_cast<double>(b.period_bytes) * 8.0 / 1e6 / tti_s;
      b.service_rate_mbps =
          (1.0 - kAlpha) * b.service_rate_mbps + kAlpha * mbps;
      b.period_bytes = 0;
    }
  }
}

e2sm::mac::IndicationMsg BaseStation::mac_stats(
    bool include_harq, const std::vector<std::uint16_t>& filter) {
  e2sm::mac::IndicationMsg msg;
  for (auto& [rnti, ue] : ues_) {
    if (!filter.empty() &&
        std::find(filter.begin(), filter.end(), rnti) == filter.end())
      continue;
    e2sm::mac::UeStats s;
    s.rnti = rnti;
    s.cqi = ue.channel.cqi();
    s.mcs_dl = ue.last_mcs;
    s.mcs_ul = ue.last_mcs;
    s.prbs_dl = ue.period_prbs;
    s.bytes_dl = ue.period_bytes;
    std::uint32_t backlog = 0;
    for (auto& [drb, b] : ue.bearers)
      backlog += b.rlc.buffer_bytes() + b.tc.backlog_bytes();
    s.bsr = backlog;
    s.phr_db = 20;
    s.slice_id = mac_.slice_of(rnti);
    if (include_harq) s.harq_retx = ue.period_harq_retx;
    msg.ues.push_back(s);
    ue.period_prbs = 0;
    ue.period_bytes = 0;
    ue.period_harq_retx = 0;
  }
  return msg;
}

e2sm::rlc::IndicationMsg BaseStation::rlc_stats(
    const std::vector<std::uint16_t>& filter) {
  e2sm::rlc::IndicationMsg msg;
  for (auto& [rnti, ue] : ues_) {
    if (!filter.empty() &&
        std::find(filter.begin(), filter.end(), rnti) == filter.end())
      continue;
    for (auto& [drb, b] : ue.bearers) {
      e2sm::rlc::BearerStats s;
      s.rnti = rnti;
      s.drb_id = drb;
      const auto& st = b.rlc.stats();
      s.tx_bytes = st.tx_bytes;
      s.rx_bytes = st.rx_bytes;
      s.tx_pdus = st.tx_pdus;
      s.rx_sdus = st.rx_sdus;
      s.buffer_bytes = b.rlc.buffer_bytes();
      s.buffer_pkts = b.rlc.buffer_pkts();
      b.rlc.snapshot_period(&s.sojourn_avg_ms, &s.sojourn_max_ms);
      // Head-of-line sojourn dominates when nothing was dequeued.
      s.sojourn_max_ms =
          std::max(s.sojourn_max_ms, b.rlc.head_sojourn_ms(now_));
      s.dropped_sdus = st.dropped_sdus;
      msg.bearers.push_back(s);
    }
  }
  return msg;
}

e2sm::pdcp::IndicationMsg BaseStation::pdcp_stats(
    const std::vector<std::uint16_t>& filter) {
  e2sm::pdcp::IndicationMsg msg;
  for (auto& [rnti, ue] : ues_) {
    if (!filter.empty() &&
        std::find(filter.begin(), filter.end(), rnti) == filter.end())
      continue;
    for (auto& [drb, b] : ue.bearers) {
      e2sm::pdcp::BearerStats s;
      s.rnti = rnti;
      s.drb_id = drb;
      const auto& st = b.pdcp.stats();
      s.tx_sdu_bytes = st.tx_sdu_bytes;
      s.tx_pdu_bytes = st.tx_pdu_bytes;
      s.rx_sdu_bytes = st.rx_sdu_bytes;
      s.rx_pdu_bytes = st.rx_pdu_bytes;
      s.tx_sdus = st.tx_sdus;
      s.tx_pdus = st.tx_pdus;
      s.rx_sdus = st.rx_sdus;
      s.rx_pdus = st.rx_pdus;
      s.discarded_sdus = st.discarded_sdus;
      msg.bearers.push_back(s);
    }
  }
  return msg;
}

e2sm::kpm::IndicationMsg BaseStation::kpm_stats() {
  e2sm::kpm::IndicationMsg msg;
  double window_s = static_cast<double>(cell_period_ttis_) *
                    static_cast<double>(cfg_.tti) /
                    static_cast<double>(kSecond);
  double thp = window_s > 0 ? static_cast<double>(cell_period_bytes_) * 8.0 /
                                  1e6 / window_s
                            : 0.0;
  double prb_util =
      cell_period_ttis_ > 0
          ? static_cast<double>(cell_period_prbs_) /
                (static_cast<double>(cell_period_ttis_) * cfg_.num_prbs)
          : 0.0;
  msg.metrics.push_back({e2sm::kpm::kThroughputDlMbps, thp});
  msg.metrics.push_back({e2sm::kpm::kThroughputUlMbps, 0.0});
  msg.metrics.push_back({e2sm::kpm::kPrbUtilizationDl, prb_util});
  msg.metrics.push_back(
      {e2sm::kpm::kActiveUes, static_cast<double>(ues_.size())});
  cell_period_bytes_ = 0;
  cell_period_prbs_ = 0;
  cell_period_ttis_ = 0;
  return msg;
}

double BaseStation::ue_throughput_mbps(std::uint16_t rnti, Nanos window,
                                       bool reset) {
  auto it = ues_.find(rnti);
  if (it == ues_.end() || window <= 0) return 0.0;
  double mbps = static_cast<double>(it->second.probe_bytes) * 8.0 / 1e6 /
                (static_cast<double>(window) / static_cast<double>(kSecond));
  if (reset) it->second.probe_bytes = 0;
  return mbps;
}

}  // namespace flexric::ran
