#include "ran/config.hpp"

#include <algorithm>

namespace flexric::ran {

double mcs_efficiency(std::uint8_t mcs) noexcept {
  // 29 entries, QPSK (0-9), 16QAM (10-16), 64QAM (17-28); bits per RE.
  static constexpr double kEff[29] = {
      0.2344, 0.3066, 0.3770, 0.4902, 0.6016, 0.7402, 0.8770, 1.0273,
      1.1758, 1.3262, 1.3281, 1.4766, 1.6953, 1.9141, 2.1602, 2.4063,
      2.5703, 2.5664, 2.7305, 3.0293, 3.3223, 3.6094, 3.9023, 4.2129,
      4.5234, 4.8164, 5.1152, 5.3320, 5.5547};
  if (mcs > 28) mcs = 28;
  return kEff[mcs];
}

std::uint32_t transport_block_bits(std::uint8_t mcs,
                                   std::uint32_t prbs) noexcept {
  // 12 subcarriers x 14 OFDM symbols per PRB per ms; 15 % control/reference
  // overhead (places the simulated cells in the paper's throughput range:
  // ~17-20 Mbps at 25 PRB/MCS 28, ~50+ Mbps at 106 PRB/MCS 20).
  constexpr double kRePerPrb = 12.0 * 14.0;
  constexpr double kOverhead = 0.85;
  double bits = static_cast<double>(prbs) * kRePerPrb * kOverhead *
                mcs_efficiency(mcs);
  return static_cast<std::uint32_t>(bits);
}

double cell_capacity_mbps(const CellConfig& cfg) noexcept {
  double bits_per_tti =
      transport_block_bits(cfg.default_mcs, cfg.num_prbs);
  double ttis_per_s =
      static_cast<double>(kSecond) / static_cast<double>(cfg.tti);
  return bits_per_tti * ttis_per_s / 1e6;
}

std::uint8_t cqi_to_mcs(std::uint8_t cqi) noexcept {
  // Conservative linear-ish mapping CQI 1..15 -> MCS 0..28.
  static constexpr std::uint8_t kMap[16] = {0,  0,  2,  4,  6,  8,  11, 13,
                                            15, 18, 20, 22, 24, 26, 28, 28};
  return kMap[std::min<std::uint8_t>(cqi, 15)];
}

}  // namespace flexric::ran
