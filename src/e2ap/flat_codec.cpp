// FlatBuffers-style wire codec for the E2AP IR.
//
// Scalars live in the fixed region in declaration order; opaque SM payloads
// and lists ride in the var region (lists of structs are encoded as nested
// flat tables concatenated inside one var field). "Decoding" validates the
// table header and then reads fields in place — the near-zero decode cost
// that lets FB beat ASN.1 by ~4x controller CPU in the paper (§5.3).
#include <algorithm>

#include "codec/flat.hpp"
#include "e2ap/codec.hpp"

namespace flexric::e2ap {
namespace {

// ------------------------- wire-derived enums -----------------------------
// FLAT has no constrained-integer encoding (PER rejects out-of-range values
// at the bit level), so every enum discriminant read off the wire is range-
// checked here before the cast: garbage bytes must decode to an error, never
// to an IR message carrying an invalid enum.

Result<NodeType> to_node_type(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(NodeType::du))
    return Error{Errc::out_of_range, "invalid E2 node type"};
  return static_cast<NodeType>(v);
}

Result<ActionType> to_action_type(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(ActionType::policy))
    return Error{Errc::out_of_range, "invalid action type"};
  return static_cast<ActionType>(v);
}

Result<Cause::Group> to_cause_group(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(Cause::Group::misc))
    return Error{Errc::out_of_range, "invalid cause group"};
  return static_cast<Cause::Group>(v);
}

// ------------------------- list sub-encodings -----------------------------
// Lists are encoded into a single var field: u32 count, then elements. The
// elements use plain little-endian layouts (BufWriter/BufReader), since the
// var region is already offset-addressed by the enclosing table.
//
// Every decoded count is wire-tainted until it is range-checked against the
// bytes actually present (wire-taint pass, DESIGN.md §12): a forged count of
// 2^32-1 with a 4-byte payload must fail up front, not drive a loop bound or
// a reserve(). Each list checks count <= remaining / <min element size>.

/// Smallest possible wire footprint of one list element, in bytes
/// (uvarint length prefixes contribute at least one byte each).
constexpr std::size_t kMinRanFunctionBytes = 6;  // u16+u16+lp(1)+lp(1)
constexpr std::size_t kMinU16Bytes = 2;
constexpr std::size_t kMinU16CauseBytes = 4;     // u16+u8+u8
constexpr std::size_t kMinActionBytes = 3;       // u8+u8+lp(1)
constexpr std::size_t kMinComponentBytes = 2;    // lp(1)+lp(1)
constexpr std::size_t kMinComponentNameBytes = 1;
constexpr std::size_t kMinAdmittedBytes = 1;     // u8
constexpr std::size_t kMinNotAdmittedBytes = 3;  // u8+u8+u8

// @coldpath error construction only; never runs on a well-formed frame
Error list_count_overflow(const char* what) {
  return Error{Errc::malformed,
               std::string(what) + " list count exceeds payload"};
}

void put_ran_functions(FlatWriter& w, const std::vector<RanFunctionItem>& v) {
  BufWriter b;
  b.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& f : v) {
    b.u16(f.id);
    b.u16(f.revision);
    b.lp_string(f.name);
    b.lp_bytes(f.definition);
  }
  w.var_bytes(b.view());
}

Result<std::vector<RanFunctionItem>> get_ran_functions(FlatView& v) {
  auto raw = v.var_bytes();
  if (!raw) return raw.error();
  BufReader r(*raw);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > r.remaining() / kMinRanFunctionBytes)
    return list_count_overflow("ran-function");
  std::vector<RanFunctionItem> out;
  out.reserve(std::min<std::size_t>(*n, 4096));
  for (std::uint32_t i = 0; i < *n; ++i) {
    RanFunctionItem f;
    auto id = r.u16();
    if (!id) return id.error();
    f.id = *id;
    auto rev = r.u16();
    if (!rev) return rev.error();
    f.revision = *rev;
    auto name = r.lp_string();
    if (!name) return name.error();
    f.name = std::move(*name);
    auto def = r.lp_bytes();
    if (!def) return def.error();
    f.definition.assign(def->begin(), def->end());
    out.push_back(std::move(f));
  }
  return out;
}

void put_u16_list(FlatWriter& w, const std::vector<std::uint16_t>& v) {
  BufWriter b;
  b.u32(static_cast<std::uint32_t>(v.size()));
  for (auto x : v) b.u16(x);
  w.var_bytes(b.view());
}

Result<std::vector<std::uint16_t>> get_u16_list(FlatView& v) {
  auto raw = v.var_bytes();
  if (!raw) return raw.error();
  BufReader r(*raw);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > r.remaining() / kMinU16Bytes) return list_count_overflow("u16");
  std::vector<std::uint16_t> out;
  out.reserve(std::min<std::size_t>(*n, 4096));
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto x = r.u16();
    if (!x) return x.error();
    out.push_back(*x);
  }
  return out;
}

void put_u16_cause_list(FlatWriter& w,
                        const std::vector<std::pair<std::uint16_t, Cause>>& v) {
  BufWriter b;
  b.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& [id, c] : v) {
    b.u16(id);
    b.u8(static_cast<std::uint8_t>(c.group));
    b.u8(c.value);
  }
  w.var_bytes(b.view());
}

Result<std::vector<std::pair<std::uint16_t, Cause>>> get_u16_cause_list(
    FlatView& v) {
  auto raw = v.var_bytes();
  if (!raw) return raw.error();
  BufReader r(*raw);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > r.remaining() / kMinU16CauseBytes)
    return list_count_overflow("u16-cause");
  std::vector<std::pair<std::uint16_t, Cause>> out;
  out.reserve(std::min<std::size_t>(*n, 4096));
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto id = r.u16();
    if (!id) return id.error();
    auto g = r.u8();
    if (!g) return g.error();
    auto grp = to_cause_group(*g);
    if (!grp) return grp.error();
    auto val = r.u8();
    if (!val) return val.error();
    out.emplace_back(*id, Cause{*grp, *val});
  }
  return out;
}

void put_actions(FlatWriter& w, const std::vector<Action>& v) {
  BufWriter b;
  b.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& a : v) {
    b.u8(a.id);
    b.u8(static_cast<std::uint8_t>(a.type));
    b.lp_bytes(a.definition);
  }
  w.var_bytes(b.view());
}

Result<std::vector<Action>> get_actions(FlatView& v) {
  auto raw = v.var_bytes();
  if (!raw) return raw.error();
  BufReader r(*raw);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > r.remaining() / kMinActionBytes)
    return list_count_overflow("action");
  std::vector<Action> out;
  out.reserve(std::min<std::size_t>(*n, 4096));
  for (std::uint32_t i = 0; i < *n; ++i) {
    Action a;
    auto id = r.u8();
    if (!id) return id.error();
    a.id = *id;
    auto t = r.u8();
    if (!t) return t.error();
    auto at = to_action_type(*t);
    if (!at) return at.error();
    a.type = *at;
    auto def = r.lp_bytes();
    if (!def) return def.error();
    a.definition.assign(def->begin(), def->end());
    out.push_back(std::move(a));
  }
  return out;
}

void put_cause(FlatWriter& w, const Cause& c) {
  w.u8(static_cast<std::uint8_t>(c.group));
  w.u8(c.value);
}

Result<Cause> get_cause(FlatView& v) {
  auto g = v.u8();
  if (!g) return g.error();
  auto grp = to_cause_group(*g);
  if (!grp) return grp.error();
  auto val = v.u8();
  if (!val) return val.error();
  return Cause{*grp, *val};
}

void put_req_id(FlatWriter& w, const RicRequestId& id) {
  w.u16(id.requestor);
  w.u16(id.instance);
}

Result<RicRequestId> get_req_id(FlatView& v) {
  RicRequestId id;
  auto a = v.u16();
  if (!a) return a.error();
  id.requestor = *a;
  auto b = v.u16();
  if (!b) return b.error();
  id.instance = *b;
  return id;
}

// Buffer <-> var field helpers
void put_buf(FlatWriter& w, const Buffer& b) { w.var_bytes(b); }
Result<Buffer> get_buf(FlatView& v) {
  auto raw = v.var_bytes();
  if (!raw) return raw.error();
  return Buffer(raw->begin(), raw->end());
}

// ------------------------- per-procedure ----------------------------------

void enc(FlatWriter& w, const SetupRequest& m) {
  w.u8(m.trans_id);
  w.u32(m.node.plmn);
  w.u32(m.node.nb_id);
  w.u8(static_cast<std::uint8_t>(m.node.type));
  put_ran_functions(w, m.ran_functions);
}

Result<Msg> dec_setup_request(FlatView& v) {
  SetupRequest m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto plmn = v.u32();
  if (!plmn) return plmn.error();
  m.node.plmn = *plmn;
  auto nb = v.u32();
  if (!nb) return nb.error();
  m.node.nb_id = *nb;
  auto nt = v.u8();
  if (!nt) return nt.error();
  auto node_type = to_node_type(*nt);
  if (!node_type) return node_type.error();
  m.node.type = *node_type;
  auto fns = get_ran_functions(v);
  if (!fns) return fns.error();
  m.ran_functions = std::move(*fns);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const SetupResponse& m) {
  w.u8(m.trans_id);
  w.u32(m.ric_id);
  put_u16_list(w, m.accepted);
  put_u16_cause_list(w, m.rejected);
}

Result<Msg> dec_setup_response(FlatView& v) {
  SetupResponse m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto ric = v.u32();
  if (!ric) return ric.error();
  m.ric_id = *ric;
  auto acc = get_u16_list(v);
  if (!acc) return acc.error();
  m.accepted = std::move(*acc);
  auto rej = get_u16_cause_list(v);
  if (!rej) return rej.error();
  m.rejected = std::move(*rej);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const SetupFailure& m) {
  w.u8(m.trans_id);
  put_cause(w, m.cause);
}

Result<Msg> dec_setup_failure(FlatView& v) {
  SetupFailure m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto c = get_cause(v);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(FlatWriter& w, const ResetRequest& m) {
  w.u8(m.trans_id);
  put_cause(w, m.cause);
}

Result<Msg> dec_reset_request(FlatView& v) {
  ResetRequest m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto c = get_cause(v);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(FlatWriter& w, const ResetResponse& m) { w.u8(m.trans_id); }

Result<Msg> dec_reset_response(FlatView& v) {
  ResetResponse m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  return Msg{m};
}

void enc(FlatWriter& w, const ErrorIndication& m) {
  w.boolean(m.request.has_value());
  put_req_id(w, m.request.value_or(RicRequestId{}));
  w.boolean(m.ran_function_id.has_value());
  w.u16(m.ran_function_id.value_or(0));
  put_cause(w, m.cause);
}

Result<Msg> dec_error_indication(FlatView& v) {
  ErrorIndication m;
  auto has_req = v.boolean();
  if (!has_req) return has_req.error();
  auto id = get_req_id(v);
  if (!id) return id.error();
  if (*has_req) m.request = *id;
  auto has_fn = v.boolean();
  if (!has_fn) return has_fn.error();
  auto fn = v.u16();
  if (!fn) return fn.error();
  if (*has_fn) m.ran_function_id = *fn;
  auto c = get_cause(v);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const ServiceUpdate& m) {
  w.u8(m.trans_id);
  put_ran_functions(w, m.added);
  put_ran_functions(w, m.modified);
  put_u16_list(w, m.removed);
}

Result<Msg> dec_service_update(FlatView& v) {
  ServiceUpdate m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto a = get_ran_functions(v);
  if (!a) return a.error();
  m.added = std::move(*a);
  auto mo = get_ran_functions(v);
  if (!mo) return mo.error();
  m.modified = std::move(*mo);
  auto rem = get_u16_list(v);
  if (!rem) return rem.error();
  m.removed = std::move(*rem);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const ServiceUpdateAck& m) {
  w.u8(m.trans_id);
  put_u16_list(w, m.accepted);
  put_u16_cause_list(w, m.rejected);
}

Result<Msg> dec_service_update_ack(FlatView& v) {
  ServiceUpdateAck m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto acc = get_u16_list(v);
  if (!acc) return acc.error();
  m.accepted = std::move(*acc);
  auto rej = get_u16_cause_list(v);
  if (!rej) return rej.error();
  m.rejected = std::move(*rej);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const ServiceUpdateFailure& m) {
  w.u8(m.trans_id);
  put_cause(w, m.cause);
}

Result<Msg> dec_service_update_failure(FlatView& v) {
  ServiceUpdateFailure m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto c = get_cause(v);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(FlatWriter& w, const NodeConfigUpdate& m) {
  w.u8(m.trans_id);
  BufWriter b;
  b.u32(static_cast<std::uint32_t>(m.components.size()));
  for (const auto& [name, cfg] : m.components) {
    b.lp_string(name);
    b.lp_bytes(cfg);
  }
  w.var_bytes(b.view());
}

Result<Msg> dec_node_config_update(FlatView& v) {
  NodeConfigUpdate m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto raw = v.var_bytes();
  if (!raw) return raw.error();
  BufReader r(*raw);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > r.remaining() / kMinComponentBytes)
    return list_count_overflow("node-config component");
  m.components.reserve(std::min<std::size_t>(*n, 4096));
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto name = r.lp_string();
    if (!name) return name.error();
    auto cfg = r.lp_bytes();
    if (!cfg) return cfg.error();
    m.components.emplace_back(std::move(*name),
                              Buffer(cfg->begin(), cfg->end()));
  }
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const NodeConfigUpdateAck& m) {
  w.u8(m.trans_id);
  BufWriter b;
  b.u32(static_cast<std::uint32_t>(m.accepted_components.size()));
  for (const auto& name : m.accepted_components) b.lp_string(name);
  w.var_bytes(b.view());
}

Result<Msg> dec_node_config_update_ack(FlatView& v) {
  NodeConfigUpdateAck m;
  auto t = v.u8();
  if (!t) return t.error();
  m.trans_id = *t;
  auto raw = v.var_bytes();
  if (!raw) return raw.error();
  BufReader r(*raw);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > r.remaining() / kMinComponentNameBytes)
    return list_count_overflow("accepted-component");
  m.accepted_components.reserve(std::min<std::size_t>(*n, 4096));
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto name = r.lp_string();
    if (!name) return name.error();
    m.accepted_components.push_back(std::move(*name));
  }
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const SubscriptionRequest& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  put_buf(w, m.event_trigger);
  put_actions(w, m.actions);
}

Result<Msg> dec_subscription_request(FlatView& v) {
  SubscriptionRequest m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto trig = get_buf(v);
  if (!trig) return trig.error();
  m.event_trigger = std::move(*trig);
  auto acts = get_actions(v);
  if (!acts) return acts.error();
  m.actions = std::move(*acts);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const SubscriptionResponse& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  BufWriter adm;
  adm.u32(static_cast<std::uint32_t>(m.admitted.size()));
  for (auto id : m.admitted) adm.u8(id);
  w.var_bytes(adm.view());
  BufWriter nadm;
  nadm.u32(static_cast<std::uint32_t>(m.not_admitted.size()));
  for (const auto& [id, c] : m.not_admitted) {
    nadm.u8(id);
    nadm.u8(static_cast<std::uint8_t>(c.group));
    nadm.u8(c.value);
  }
  w.var_bytes(nadm.view());
}

Result<Msg> dec_subscription_response(FlatView& v) {
  SubscriptionResponse m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto adm_raw = v.var_bytes();
  if (!adm_raw) return adm_raw.error();
  {
    BufReader r(*adm_raw);
    auto n = r.u32();
    if (!n) return n.error();
    if (*n > r.remaining() / kMinAdmittedBytes)
      return list_count_overflow("admitted-action");
    m.admitted.reserve(std::min<std::size_t>(*n, 4096));
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto x = r.u8();
      if (!x) return x.error();
      m.admitted.push_back(*x);
    }
  }
  auto nadm_raw = v.var_bytes();
  if (!nadm_raw) return nadm_raw.error();
  {
    BufReader r(*nadm_raw);
    auto n = r.u32();
    if (!n) return n.error();
    if (*n > r.remaining() / kMinNotAdmittedBytes)
      return list_count_overflow("not-admitted-action");
    m.not_admitted.reserve(std::min<std::size_t>(*n, 4096));
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto x = r.u8();
      if (!x) return x.error();
      auto g = r.u8();
      if (!g) return g.error();
      auto grp = to_cause_group(*g);
      if (!grp) return grp.error();
      auto val = r.u8();
      if (!val) return val.error();
      m.not_admitted.emplace_back(*x, Cause{*grp, *val});
    }
  }
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const SubscriptionFailure& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  put_cause(w, m.cause);
}

Result<Msg> dec_subscription_failure(FlatView& v) {
  SubscriptionFailure m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto c = get_cause(v);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

template <typename T>
void enc_sub_delete(FlatWriter& w, const T& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
}
void enc(FlatWriter& w, const SubscriptionDeleteRequest& m) {
  enc_sub_delete(w, m);
}
void enc(FlatWriter& w, const SubscriptionDeleteResponse& m) {
  enc_sub_delete(w, m);
}

template <typename T>
Result<Msg> dec_sub_delete(FlatView& v) {
  T m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  return Msg{m};
}

void enc(FlatWriter& w, const SubscriptionDeleteFailure& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  put_cause(w, m.cause);
}

Result<Msg> dec_sub_delete_failure(FlatView& v) {
  SubscriptionDeleteFailure m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto c = get_cause(v);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(FlatWriter& w, const Indication& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  w.u8(m.action_id);
  w.u32(m.sn);
  w.u8(static_cast<std::uint8_t>(m.type));
  w.boolean(m.call_process_id.has_value());
  put_buf(w, m.header);
  put_buf(w, m.message);
  put_buf(w, m.call_process_id.value_or(Buffer{}));
}

Result<Msg> dec_indication(FlatView& v) {
  Indication m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto act = v.u8();
  if (!act) return act.error();
  m.action_id = *act;
  auto sn = v.u32();
  if (!sn) return sn.error();
  m.sn = *sn;
  auto t = v.u8();
  if (!t) return t.error();
  auto at = to_action_type(*t);
  if (!at) return at.error();
  m.type = *at;
  auto has_cpid = v.boolean();
  if (!has_cpid) return has_cpid.error();
  auto hdr = get_buf(v);
  if (!hdr) return hdr.error();
  m.header = std::move(*hdr);
  auto msg = get_buf(v);
  if (!msg) return msg.error();
  m.message = std::move(*msg);
  auto cpid = get_buf(v);
  if (!cpid) return cpid.error();
  if (*has_cpid) m.call_process_id = std::move(*cpid);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const ControlRequest& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  w.boolean(m.ack_requested);
  w.boolean(m.call_process_id.has_value());
  put_buf(w, m.header);
  put_buf(w, m.message);
  put_buf(w, m.call_process_id.value_or(Buffer{}));
}

Result<Msg> dec_control_request(FlatView& v) {
  ControlRequest m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto ack = v.boolean();
  if (!ack) return ack.error();
  m.ack_requested = *ack;
  auto has_cpid = v.boolean();
  if (!has_cpid) return has_cpid.error();
  auto hdr = get_buf(v);
  if (!hdr) return hdr.error();
  m.header = std::move(*hdr);
  auto msg = get_buf(v);
  if (!msg) return msg.error();
  m.message = std::move(*msg);
  auto cpid = get_buf(v);
  if (!cpid) return cpid.error();
  if (*has_cpid) m.call_process_id = std::move(*cpid);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const ControlAck& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  put_buf(w, m.outcome);
}

Result<Msg> dec_control_ack(FlatView& v) {
  ControlAck m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto out = get_buf(v);
  if (!out) return out.error();
  m.outcome = std::move(*out);
  return Msg{std::move(m)};
}

void enc(FlatWriter& w, const ControlFailure& m) {
  put_req_id(w, m.request);
  w.u16(m.ran_function_id);
  put_cause(w, m.cause);
  put_buf(w, m.outcome);
}

Result<Msg> dec_control_failure(FlatView& v) {
  ControlFailure m;
  auto id = get_req_id(v);
  if (!id) return id.error();
  m.request = *id;
  auto fn = v.u16();
  if (!fn) return fn.error();
  m.ran_function_id = *fn;
  auto c = get_cause(v);
  if (!c) return c.error();
  m.cause = *c;
  auto out = get_buf(v);
  if (!out) return out.error();
  m.outcome = std::move(*out);
  return Msg{std::move(m)};
}

// ------------------------- codec object -----------------------------------

// @hotpath decode runs once per received frame (paper §5.3)
class FlatCodec final : public Codec {
 public:
  [[nodiscard]] WireFormat format() const noexcept override {
    return WireFormat::flat;
  }

  [[nodiscard]] Result<Buffer> encode(const Msg& m) const override {
    FlatWriter w;
    w.u8(static_cast<std::uint8_t>(msg_type(m)));
    std::visit([&w](const auto& msg) { enc(w, msg); }, m);
    return w.finish();
  }

  [[nodiscard]] Result<Msg> decode(BytesView wire) const override {
    auto view = FlatView::parse(wire);
    if (!view) return view.error();
    FlatView v = *view;
    auto tag = v.u8();
    if (!tag) return tag.error();
    if (*tag >= kNumMsgTypes)
      return Error{Errc::malformed, "unknown E2AP message type"};
    switch (static_cast<MsgType>(*tag)) {
      case MsgType::setup_request: return dec_setup_request(v);
      case MsgType::setup_response: return dec_setup_response(v);
      case MsgType::setup_failure: return dec_setup_failure(v);
      case MsgType::reset_request: return dec_reset_request(v);
      case MsgType::reset_response: return dec_reset_response(v);
      case MsgType::error_indication: return dec_error_indication(v);
      case MsgType::service_update: return dec_service_update(v);
      case MsgType::service_update_ack: return dec_service_update_ack(v);
      case MsgType::service_update_failure:
        return dec_service_update_failure(v);
      case MsgType::node_config_update: return dec_node_config_update(v);
      case MsgType::node_config_update_ack:
        return dec_node_config_update_ack(v);
      case MsgType::subscription_request: return dec_subscription_request(v);
      case MsgType::subscription_response: return dec_subscription_response(v);
      case MsgType::subscription_failure: return dec_subscription_failure(v);
      case MsgType::subscription_delete_request:
        return dec_sub_delete<SubscriptionDeleteRequest>(v);
      case MsgType::subscription_delete_response:
        return dec_sub_delete<SubscriptionDeleteResponse>(v);
      case MsgType::subscription_delete_failure:
        return dec_sub_delete_failure(v);
      case MsgType::indication: return dec_indication(v);
      case MsgType::control_request: return dec_control_request(v);
      case MsgType::control_ack: return dec_control_ack(v);
      case MsgType::control_failure: return dec_control_failure(v);
    }
    return Error{Errc::malformed, "unknown E2AP message type"};
  }

  [[nodiscard]] Result<MsgType> peek_type(BytesView wire) const override {
    auto view = FlatView::parse(wire);
    if (!view) return view.error();
    FlatView v = *view;
    auto tag = v.u8();
    if (!tag) return tag.error();
    if (*tag >= kNumMsgTypes)
      return Error{Errc::malformed, "unknown E2AP message type"};
    return static_cast<MsgType>(*tag);
  }
};

}  // namespace

const Codec& flat_codec() {
  static const FlatCodec c;
  return c;
}

const Codec& codec_for(WireFormat f) {
  // lint: allow(wire-assert) argument is a local config enum, not wire data
  FLEXRIC_ASSERT(f == WireFormat::per || f == WireFormat::flat,
                 "E2AP codec: per or flat only");
  return f == WireFormat::per ? per_codec() : flat_codec();
}

}  // namespace flexric::e2ap
