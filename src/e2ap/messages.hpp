// E2AP intermediate representation (IR).
//
// The paper's E2 abstraction (§4.3) models E2AP procedures "without loss of
// information and independent of any particular encoding/decoding
// algorithms". These structs are that IR: agents, the server library, iApps
// and xApps all exchange them; the wire codecs in per_codec.cpp /
// flat_codec.cpp translate them to bytes. 21 procedures are implemented
// (the paper implements 20/26 in ASN.1 and 12/26 in FlatBuffers; here both
// codecs cover all 21).
//
// SM payloads (event triggers, action definitions, indication header/message,
// control header/message) are opaque byte strings at this layer — E2 double-
// encodes: the E2SM payload is encoded first, then embedded in the E2AP
// message (§5.2 measures the cost of exactly this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/buffer.hpp"

namespace flexric::e2ap {

/// Discriminator for the IR variant; also the on-wire message type tag.
enum class MsgType : std::uint8_t {
  // -- Global procedures (connection management) --
  setup_request = 0,
  setup_response,
  setup_failure,
  reset_request,
  reset_response,
  error_indication,
  service_update,
  service_update_ack,
  service_update_failure,
  node_config_update,
  node_config_update_ack,
  // -- Functional procedures (RIC <-> RAN function) --
  subscription_request,
  subscription_response,
  subscription_failure,
  subscription_delete_request,
  subscription_delete_response,
  subscription_delete_failure,
  indication,
  control_request,
  control_ack,
  control_failure,
};
constexpr std::size_t kNumMsgTypes = 21;
const char* msg_type_name(MsgType t) noexcept;

/// E2 node kind: monolithic eNB/gNB or a disaggregated part (CU/DU). The RAN
/// management in the server merges CU+DU agents of the same base station.
enum class NodeType : std::uint8_t { enb = 0, gnb, cu, du };

/// Globally unique E2 node identity (simplified GlobalE2node-ID).
struct GlobalNodeId {
  std::uint32_t plmn = 0;    ///< packed MCC/MNC
  std::uint32_t nb_id = 0;   ///< base station id; CU/DU of one BS share it
  NodeType type = NodeType::enb;
  bool operator==(const GlobalNodeId&) const = default;
};

/// A RAN function advertised by an E2 node at setup time.
struct RanFunctionItem {
  std::uint16_t id = 0;
  std::uint16_t revision = 0;
  std::string name;        ///< OID-like SM name, e.g. "ORAN-E2SM-MAC-STATS"
  Buffer definition;       ///< SM-specific capability blob
  bool operator==(const RanFunctionItem&) const = default;
};

/// Failure cause (simplified E2AP Cause IE).
struct Cause {
  enum class Group : std::uint8_t { ric = 0, transport, protocol, misc };
  Group group = Group::misc;
  std::uint8_t value = 0;
  bool operator==(const Cause&) const = default;
};

/// Identifies one subscription/control transaction of one requestor (xApp or
/// iApp) — the E2AP RICrequestID.
struct RicRequestId {
  std::uint16_t requestor = 0;
  std::uint16_t instance = 0;
  bool operator==(const RicRequestId&) const = default;
  auto operator<=>(const RicRequestId&) const = default;
};

/// Subscription action kind (E2SM services; see Appendix A of the paper).
enum class ActionType : std::uint8_t { report = 0, insert, policy };

struct Action {
  std::uint8_t id = 0;
  ActionType type = ActionType::report;
  Buffer definition;  ///< SM-encoded action definition
  bool operator==(const Action&) const = default;
  auto operator<=>(const Action&) const = default;
};

// ---------------------------------------------------------------------------
// Global procedures
// ---------------------------------------------------------------------------

struct SetupRequest {
  static constexpr MsgType kType = MsgType::setup_request;
  std::uint8_t trans_id = 0;
  GlobalNodeId node;
  std::vector<RanFunctionItem> ran_functions;
  bool operator==(const SetupRequest&) const = default;
};

struct SetupResponse {
  static constexpr MsgType kType = MsgType::setup_response;
  std::uint8_t trans_id = 0;
  std::uint32_t ric_id = 0;
  std::vector<std::uint16_t> accepted;                 ///< RAN function ids
  std::vector<std::pair<std::uint16_t, Cause>> rejected;
  bool operator==(const SetupResponse&) const = default;
};

struct SetupFailure {
  static constexpr MsgType kType = MsgType::setup_failure;
  std::uint8_t trans_id = 0;
  Cause cause;
  bool operator==(const SetupFailure&) const = default;
};

struct ResetRequest {
  static constexpr MsgType kType = MsgType::reset_request;
  std::uint8_t trans_id = 0;
  Cause cause;
  bool operator==(const ResetRequest&) const = default;
};

struct ResetResponse {
  static constexpr MsgType kType = MsgType::reset_response;
  std::uint8_t trans_id = 0;
  bool operator==(const ResetResponse&) const = default;
};

struct ErrorIndication {
  static constexpr MsgType kType = MsgType::error_indication;
  std::optional<RicRequestId> request;  ///< present for functional errors
  std::optional<std::uint16_t> ran_function_id;
  Cause cause;
  bool operator==(const ErrorIndication&) const = default;
};

/// RAN function add/modify/remove after setup (RIC Service Update).
struct ServiceUpdate {
  static constexpr MsgType kType = MsgType::service_update;
  std::uint8_t trans_id = 0;
  std::vector<RanFunctionItem> added;
  std::vector<RanFunctionItem> modified;
  std::vector<std::uint16_t> removed;
  bool operator==(const ServiceUpdate&) const = default;
};

struct ServiceUpdateAck {
  static constexpr MsgType kType = MsgType::service_update_ack;
  std::uint8_t trans_id = 0;
  std::vector<std::uint16_t> accepted;
  std::vector<std::pair<std::uint16_t, Cause>> rejected;
  bool operator==(const ServiceUpdateAck&) const = default;
};

struct ServiceUpdateFailure {
  static constexpr MsgType kType = MsgType::service_update_failure;
  std::uint8_t trans_id = 0;
  Cause cause;
  bool operator==(const ServiceUpdateFailure&) const = default;
};

/// E2 node configuration update (simplified: opaque component configs).
struct NodeConfigUpdate {
  static constexpr MsgType kType = MsgType::node_config_update;
  std::uint8_t trans_id = 0;
  std::vector<std::pair<std::string, Buffer>> components;
  bool operator==(const NodeConfigUpdate&) const = default;
};

struct NodeConfigUpdateAck {
  static constexpr MsgType kType = MsgType::node_config_update_ack;
  std::uint8_t trans_id = 0;
  std::vector<std::string> accepted_components;
  bool operator==(const NodeConfigUpdateAck&) const = default;
};

// ---------------------------------------------------------------------------
// Functional procedures
// ---------------------------------------------------------------------------

struct SubscriptionRequest {
  static constexpr MsgType kType = MsgType::subscription_request;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  Buffer event_trigger;  ///< SM-encoded trigger (e.g. periodic timer)
  std::vector<Action> actions;
  bool operator==(const SubscriptionRequest&) const = default;
};

struct SubscriptionResponse {
  static constexpr MsgType kType = MsgType::subscription_response;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  std::vector<std::uint8_t> admitted;  ///< action ids
  std::vector<std::pair<std::uint8_t, Cause>> not_admitted;
  bool operator==(const SubscriptionResponse&) const = default;
};

struct SubscriptionFailure {
  static constexpr MsgType kType = MsgType::subscription_failure;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  Cause cause;
  bool operator==(const SubscriptionFailure&) const = default;
};

struct SubscriptionDeleteRequest {
  static constexpr MsgType kType = MsgType::subscription_delete_request;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  bool operator==(const SubscriptionDeleteRequest&) const = default;
};

struct SubscriptionDeleteResponse {
  static constexpr MsgType kType = MsgType::subscription_delete_response;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  bool operator==(const SubscriptionDeleteResponse&) const = default;
};

struct SubscriptionDeleteFailure {
  static constexpr MsgType kType = MsgType::subscription_delete_failure;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  Cause cause;
  bool operator==(const SubscriptionDeleteFailure&) const = default;
};

/// RIC Indication: RAN function -> RIC. Carries the (already SM-encoded)
/// indication header + message — the "inner" encoding of E2's double
/// encoding.
struct Indication {
  static constexpr MsgType kType = MsgType::indication;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  std::uint8_t action_id = 0;
  std::uint32_t sn = 0;  ///< sequence number
  ActionType type = ActionType::report;  ///< report or insert
  Buffer header;
  Buffer message;
  std::optional<Buffer> call_process_id;
  bool operator==(const Indication&) const = default;
};

/// RIC Control: RIC -> RAN function.
struct ControlRequest {
  static constexpr MsgType kType = MsgType::control_request;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  Buffer header;
  Buffer message;
  bool ack_requested = true;
  std::optional<Buffer> call_process_id;
  bool operator==(const ControlRequest&) const = default;
};

struct ControlAck {
  static constexpr MsgType kType = MsgType::control_ack;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  Buffer outcome;
  bool operator==(const ControlAck&) const = default;
};

struct ControlFailure {
  static constexpr MsgType kType = MsgType::control_failure;
  RicRequestId request;
  std::uint16_t ran_function_id = 0;
  Cause cause;
  Buffer outcome;
  bool operator==(const ControlFailure&) const = default;
};

/// The E2AP IR: exactly one procedure message.
using Msg = std::variant<
    SetupRequest, SetupResponse, SetupFailure, ResetRequest, ResetResponse,
    ErrorIndication, ServiceUpdate, ServiceUpdateAck, ServiceUpdateFailure,
    NodeConfigUpdate, NodeConfigUpdateAck, SubscriptionRequest,
    SubscriptionResponse, SubscriptionFailure, SubscriptionDeleteRequest,
    SubscriptionDeleteResponse, SubscriptionDeleteFailure, Indication,
    ControlRequest, ControlAck, ControlFailure>;

/// Runtime type tag of an IR message.
MsgType msg_type(const Msg& m) noexcept;

}  // namespace flexric::e2ap
