#include "e2ap/messages.hpp"

namespace flexric::e2ap {

MsgType msg_type(const Msg& m) noexcept {
  return std::visit(
      [](const auto& msg) { return std::decay_t<decltype(msg)>::kType; }, m);
}

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::setup_request: return "E2SetupRequest";
    case MsgType::setup_response: return "E2SetupResponse";
    case MsgType::setup_failure: return "E2SetupFailure";
    case MsgType::reset_request: return "ResetRequest";
    case MsgType::reset_response: return "ResetResponse";
    case MsgType::error_indication: return "ErrorIndication";
    case MsgType::service_update: return "RICserviceUpdate";
    case MsgType::service_update_ack: return "RICserviceUpdateAcknowledge";
    case MsgType::service_update_failure: return "RICserviceUpdateFailure";
    case MsgType::node_config_update: return "E2nodeConfigurationUpdate";
    case MsgType::node_config_update_ack:
      return "E2nodeConfigurationUpdateAcknowledge";
    case MsgType::subscription_request: return "RICsubscriptionRequest";
    case MsgType::subscription_response: return "RICsubscriptionResponse";
    case MsgType::subscription_failure: return "RICsubscriptionFailure";
    case MsgType::subscription_delete_request:
      return "RICsubscriptionDeleteRequest";
    case MsgType::subscription_delete_response:
      return "RICsubscriptionDeleteResponse";
    case MsgType::subscription_delete_failure:
      return "RICsubscriptionDeleteFailure";
    case MsgType::indication: return "RICindication";
    case MsgType::control_request: return "RICcontrolRequest";
    case MsgType::control_ack: return "RICcontrolAcknowledge";
    case MsgType::control_failure: return "RICcontrolFailure";
  }
  return "?";
}

}  // namespace flexric::e2ap
