// E2AP wire codec interface: IR <-> bytes.
//
// Two concrete codecs exist (PER and FLAT); the transport layer and all SDK
// users only see this interface, so the encoding can be swapped per
// connection — the flexibility the paper evaluates in §5.2.
#pragma once

#include <memory>

#include "codec/wire.hpp"
#include "common/buffer.hpp"
#include "common/result.hpp"
#include "e2ap/messages.hpp"

namespace flexric::e2ap {

class Codec {
 public:
  virtual ~Codec() = default;
  [[nodiscard]] virtual WireFormat format() const noexcept = 0;
  [[nodiscard]] virtual Result<Buffer> encode(const Msg& m) const = 0;
  [[nodiscard]] virtual Result<Msg> decode(BytesView wire) const = 0;

  /// Classify a wire image without a full decode. Both codecs lead with the
  /// message-type tag, so overload admission (DESIGN.md §11) can sort frames
  /// into CONTROL vs DATA in O(1) before spending decode cycles on a frame
  /// that may be shed. Fails with Errc::malformed on an unknown tag.
  [[nodiscard]] virtual Result<MsgType> peek_type(BytesView wire) const = 0;
};

/// Shared stateless codec singletons. `proto` is not a valid E2AP encoding —
/// it exists only for the FlexRAN baseline's custom protocol.
const Codec& per_codec();
const Codec& flat_codec();
const Codec& codec_for(WireFormat f);

}  // namespace flexric::e2ap
