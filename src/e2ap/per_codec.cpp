// ASN.1-PER-style wire codec for the E2AP IR.
//
// Every message is: constrained msg-type tag, then the procedure's fields in
// IE order, using presence bits for optionals and length determinants for
// lists — the shape asn1c emits for the O-RAN E2AP module. Decode fully
// parses into the IR (this is the CPU cost §5.2/§5.3 measure for "ASN").
#include <algorithm>

#include "codec/per.hpp"
#include "e2ap/codec.hpp"

namespace flexric::e2ap {
namespace {

// Wire-taint hardening: every list count read off the wire is checked
// against the bits actually left in the frame before it is used as a loop
// bound. Each constant is the minimum PER bit cost of one list element
// (constrained fields at their bit widths, octet strings at one length
// octet), so a count that cannot possibly be satisfied by the remaining
// payload is rejected up front instead of being discovered element by
// element.
constexpr std::size_t kMinRanFunctionBits = 40;   // 12+12+len(8)+len(8)
constexpr std::size_t kMinU16Bits = 12;           // constrained(0,4095)
constexpr std::size_t kMinU16CauseBits = 22;      // 12+2+8
constexpr std::size_t kMinActionBits = 18;        // 8+2+len(8)
constexpr std::size_t kMinComponentBits = 16;     // len(8)+len(8)
constexpr std::size_t kMinComponentNameBits = 8;  // len(8)
constexpr std::size_t kMinAdmittedBits = 8;       // constrained(0,255)
constexpr std::size_t kMinNotAdmittedBits = 18;   // 8+2+8

// @coldpath error construction only; never runs on a well-formed frame
Error per_count_overflow(const char* what) {
  return Error{Errc::malformed,
               std::string(what) + " list count exceeds payload"};
}

// --------------------------- common IEs -----------------------------------

void enc(PerWriter& w, const GlobalNodeId& id) {
  w.constrained(id.plmn, 0, 0xFFFFFF);
  w.constrained(id.nb_id, 0, 0xFFFFFFF);  // 28-bit gNB id space
  w.enumerated(static_cast<std::uint32_t>(id.type), 4);
}

Result<GlobalNodeId> dec_node_id(PerReader& r) {
  GlobalNodeId id;
  auto plmn = r.constrained(0, 0xFFFFFF);
  if (!plmn) return plmn.error();
  id.plmn = static_cast<std::uint32_t>(*plmn);
  auto nb = r.constrained(0, 0xFFFFFFF);
  if (!nb) return nb.error();
  id.nb_id = static_cast<std::uint32_t>(*nb);
  auto t = r.enumerated(4);
  if (!t) return t.error();
  id.type = static_cast<NodeType>(*t);
  return id;
}

void enc(PerWriter& w, const Cause& c) {
  w.enumerated(static_cast<std::uint32_t>(c.group), 4);
  w.constrained(c.value, 0, 255);
}

Result<Cause> dec_cause(PerReader& r) {
  Cause c;
  auto g = r.enumerated(4);
  if (!g) return g.error();
  c.group = static_cast<Cause::Group>(*g);
  auto v = r.constrained(0, 255);
  if (!v) return v.error();
  c.value = static_cast<std::uint8_t>(*v);
  return c;
}

void enc(PerWriter& w, const RicRequestId& id) {
  w.constrained(id.requestor, 0, 65535);
  w.constrained(id.instance, 0, 65535);
}

Result<RicRequestId> dec_req_id(PerReader& r) {
  RicRequestId id;
  auto a = r.constrained(0, 65535);
  if (!a) return a.error();
  id.requestor = static_cast<std::uint16_t>(*a);
  auto b = r.constrained(0, 65535);
  if (!b) return b.error();
  id.instance = static_cast<std::uint16_t>(*b);
  return id;
}

void enc(PerWriter& w, const RanFunctionItem& f) {
  w.constrained(f.id, 0, 4095);
  w.constrained(f.revision, 0, 4095);
  w.str(f.name);
  w.octets(f.definition);
}

Result<RanFunctionItem> dec_ran_function(PerReader& r) {
  RanFunctionItem f;
  auto id = r.constrained(0, 4095);
  if (!id) return id.error();
  f.id = static_cast<std::uint16_t>(*id);
  auto rev = r.constrained(0, 4095);
  if (!rev) return rev.error();
  f.revision = static_cast<std::uint16_t>(*rev);
  auto name = r.str();
  if (!name) return name.error();
  f.name = std::move(*name);
  auto def = r.octets();
  if (!def) return def.error();
  f.definition.assign(def->begin(), def->end());
  return f;
}

void enc(PerWriter& w, const Action& a) {
  w.constrained(a.id, 0, 255);
  w.enumerated(static_cast<std::uint32_t>(a.type), 3);
  w.octets(a.definition);
}

Result<Action> dec_action(PerReader& r) {
  Action a;
  auto id = r.constrained(0, 255);
  if (!id) return id.error();
  a.id = static_cast<std::uint8_t>(*id);
  auto t = r.enumerated(3);
  if (!t) return t.error();
  a.type = static_cast<ActionType>(*t);
  auto def = r.octets();
  if (!def) return def.error();
  a.definition.assign(def->begin(), def->end());
  return a;
}

void enc_u16_cause_list(PerWriter& w,
                        const std::vector<std::pair<std::uint16_t, Cause>>& v) {
  w.length(v.size());
  for (const auto& [id, cause] : v) {
    w.constrained(id, 0, 4095);
    enc(w, cause);
  }
}

Result<std::vector<std::pair<std::uint16_t, Cause>>> dec_u16_cause_list(
    PerReader& r) {
  auto n = r.length();
  if (!n) return n.error();
  if (*n > r.bits_remaining() / kMinU16CauseBits)
    return per_count_overflow("u16-cause");
  std::vector<std::pair<std::uint16_t, Cause>> out;
  out.reserve(std::min<std::size_t>(*n, 4096));
  for (std::size_t i = 0; i < *n; ++i) {
    auto id = r.constrained(0, 4095);
    if (!id) return id.error();
    auto c = dec_cause(r);
    if (!c) return c.error();
    out.emplace_back(static_cast<std::uint16_t>(*id), *c);
  }
  return out;
}

void enc_u16_list(PerWriter& w, const std::vector<std::uint16_t>& v) {
  w.length(v.size());
  for (auto id : v) w.constrained(id, 0, 4095);
}

Result<std::vector<std::uint16_t>> dec_u16_list(PerReader& r) {
  auto n = r.length();
  if (!n) return n.error();
  if (*n > r.bits_remaining() / kMinU16Bits)
    return per_count_overflow("u16");
  std::vector<std::uint16_t> out;
  out.reserve(std::min<std::size_t>(*n, 4096));
  for (std::size_t i = 0; i < *n; ++i) {
    auto id = r.constrained(0, 4095);
    if (!id) return id.error();
    out.push_back(static_cast<std::uint16_t>(*id));
  }
  return out;
}

// --------------------------- per-procedure --------------------------------

void enc(PerWriter& w, const SetupRequest& m) {
  w.constrained(m.trans_id, 0, 255);
  enc(w, m.node);
  w.length(m.ran_functions.size());
  for (const auto& f : m.ran_functions) enc(w, f);
}

Result<Msg> dec_setup_request(PerReader& r) {
  SetupRequest m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto node = dec_node_id(r);
  if (!node) return node.error();
  m.node = *node;
  auto n = r.length();
  if (!n) return n.error();
  if (*n > r.bits_remaining() / kMinRanFunctionBits)
    return per_count_overflow("ran-function");
  m.ran_functions.reserve(std::min<std::size_t>(*n, 4096));
  for (std::size_t i = 0; i < *n; ++i) {
    auto f = dec_ran_function(r);
    if (!f) return f.error();
    m.ran_functions.push_back(std::move(*f));
  }
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const SetupResponse& m) {
  w.constrained(m.trans_id, 0, 255);
  w.constrained(m.ric_id, 0, 0xFFFFF);
  enc_u16_list(w, m.accepted);
  enc_u16_cause_list(w, m.rejected);
}

Result<Msg> dec_setup_response(PerReader& r) {
  SetupResponse m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto ric = r.constrained(0, 0xFFFFF);
  if (!ric) return ric.error();
  m.ric_id = static_cast<std::uint32_t>(*ric);
  auto acc = dec_u16_list(r);
  if (!acc) return acc.error();
  m.accepted = std::move(*acc);
  auto rej = dec_u16_cause_list(r);
  if (!rej) return rej.error();
  m.rejected = std::move(*rej);
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const SetupFailure& m) {
  w.constrained(m.trans_id, 0, 255);
  enc(w, m.cause);
}

Result<Msg> dec_setup_failure(PerReader& r) {
  SetupFailure m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto c = dec_cause(r);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(PerWriter& w, const ResetRequest& m) {
  w.constrained(m.trans_id, 0, 255);
  enc(w, m.cause);
}

Result<Msg> dec_reset_request(PerReader& r) {
  ResetRequest m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto c = dec_cause(r);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(PerWriter& w, const ResetResponse& m) {
  w.constrained(m.trans_id, 0, 255);
}

Result<Msg> dec_reset_response(PerReader& r) {
  ResetResponse m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  return Msg{m};
}

void enc(PerWriter& w, const ErrorIndication& m) {
  w.presence({m.request.has_value(), m.ran_function_id.has_value()});
  if (m.request) enc(w, *m.request);
  if (m.ran_function_id) w.constrained(*m.ran_function_id, 0, 4095);
  enc(w, m.cause);
}

Result<Msg> dec_error_indication(PerReader& r) {
  ErrorIndication m;
  auto pres = r.presence(2);
  if (!pres) return pres.error();
  if ((*pres)[0]) {
    auto id = dec_req_id(r);
    if (!id) return id.error();
    m.request = *id;
  }
  if ((*pres)[1]) {
    auto f = r.constrained(0, 4095);
    if (!f) return f.error();
    m.ran_function_id = static_cast<std::uint16_t>(*f);
  }
  auto c = dec_cause(r);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const ServiceUpdate& m) {
  w.constrained(m.trans_id, 0, 255);
  w.length(m.added.size());
  for (const auto& f : m.added) enc(w, f);
  w.length(m.modified.size());
  for (const auto& f : m.modified) enc(w, f);
  enc_u16_list(w, m.removed);
}

Result<Msg> dec_service_update(PerReader& r) {
  ServiceUpdate m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  for (auto* list : {&m.added, &m.modified}) {
    auto n = r.length();
    if (!n) return n.error();
    if (*n > r.bits_remaining() / kMinRanFunctionBits)
      return per_count_overflow("service-update ran-function");
    list->reserve(std::min<std::size_t>(*n, 4096));
    for (std::size_t i = 0; i < *n; ++i) {
      auto f = dec_ran_function(r);
      if (!f) return f.error();
      list->push_back(std::move(*f));
    }
  }
  auto rem = dec_u16_list(r);
  if (!rem) return rem.error();
  m.removed = std::move(*rem);
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const ServiceUpdateAck& m) {
  w.constrained(m.trans_id, 0, 255);
  enc_u16_list(w, m.accepted);
  enc_u16_cause_list(w, m.rejected);
}

Result<Msg> dec_service_update_ack(PerReader& r) {
  ServiceUpdateAck m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto acc = dec_u16_list(r);
  if (!acc) return acc.error();
  m.accepted = std::move(*acc);
  auto rej = dec_u16_cause_list(r);
  if (!rej) return rej.error();
  m.rejected = std::move(*rej);
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const ServiceUpdateFailure& m) {
  w.constrained(m.trans_id, 0, 255);
  enc(w, m.cause);
}

Result<Msg> dec_service_update_failure(PerReader& r) {
  ServiceUpdateFailure m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto c = dec_cause(r);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(PerWriter& w, const NodeConfigUpdate& m) {
  w.constrained(m.trans_id, 0, 255);
  w.length(m.components.size());
  for (const auto& [name, cfg] : m.components) {
    w.str(name);
    w.octets(cfg);
  }
}

Result<Msg> dec_node_config_update(PerReader& r) {
  NodeConfigUpdate m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto n = r.length();
  if (!n) return n.error();
  if (*n > r.bits_remaining() / kMinComponentBits)
    return per_count_overflow("node-config component");
  m.components.reserve(std::min<std::size_t>(*n, 4096));
  for (std::size_t i = 0; i < *n; ++i) {
    auto name = r.str();
    if (!name) return name.error();
    auto cfg = r.octets();
    if (!cfg) return cfg.error();
    m.components.emplace_back(std::move(*name),
                              Buffer(cfg->begin(), cfg->end()));
  }
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const NodeConfigUpdateAck& m) {
  w.constrained(m.trans_id, 0, 255);
  w.length(m.accepted_components.size());
  for (const auto& name : m.accepted_components) w.str(name);
}

Result<Msg> dec_node_config_update_ack(PerReader& r) {
  NodeConfigUpdateAck m;
  auto t = r.constrained(0, 255);
  if (!t) return t.error();
  m.trans_id = static_cast<std::uint8_t>(*t);
  auto n = r.length();
  if (!n) return n.error();
  if (*n > r.bits_remaining() / kMinComponentNameBits)
    return per_count_overflow("accepted-component");
  m.accepted_components.reserve(std::min<std::size_t>(*n, 4096));
  for (std::size_t i = 0; i < *n; ++i) {
    auto name = r.str();
    if (!name) return name.error();
    m.accepted_components.push_back(std::move(*name));
  }
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const SubscriptionRequest& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  w.octets(m.event_trigger);
  w.length(m.actions.size());
  for (const auto& a : m.actions) enc(w, a);
}

Result<Msg> dec_subscription_request(PerReader& r) {
  SubscriptionRequest m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto trig = r.octets();
  if (!trig) return trig.error();
  m.event_trigger.assign(trig->begin(), trig->end());
  auto n = r.length();
  if (!n) return n.error();
  if (*n > r.bits_remaining() / kMinActionBits)
    return per_count_overflow("action");
  m.actions.reserve(std::min<std::size_t>(*n, 4096));
  for (std::size_t i = 0; i < *n; ++i) {
    auto a = dec_action(r);
    if (!a) return a.error();
    m.actions.push_back(std::move(*a));
  }
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const SubscriptionResponse& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  w.length(m.admitted.size());
  for (auto id : m.admitted) w.constrained(id, 0, 255);
  w.length(m.not_admitted.size());
  for (const auto& [id, cause] : m.not_admitted) {
    w.constrained(id, 0, 255);
    enc(w, cause);
  }
}

Result<Msg> dec_subscription_response(PerReader& r) {
  SubscriptionResponse m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto n = r.length();
  if (!n) return n.error();
  if (*n > r.bits_remaining() / kMinAdmittedBits)
    return per_count_overflow("admitted-action");
  m.admitted.reserve(std::min<std::size_t>(*n, 4096));
  for (std::size_t i = 0; i < *n; ++i) {
    auto a = r.constrained(0, 255);
    if (!a) return a.error();
    m.admitted.push_back(static_cast<std::uint8_t>(*a));
  }
  auto nn = r.length();
  if (!nn) return nn.error();
  if (*nn > r.bits_remaining() / kMinNotAdmittedBits)
    return per_count_overflow("not-admitted-action");
  m.not_admitted.reserve(std::min<std::size_t>(*nn, 4096));
  for (std::size_t i = 0; i < *nn; ++i) {
    auto a = r.constrained(0, 255);
    if (!a) return a.error();
    auto c = dec_cause(r);
    if (!c) return c.error();
    m.not_admitted.emplace_back(static_cast<std::uint8_t>(*a), *c);
  }
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const SubscriptionFailure& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  enc(w, m.cause);
}

Result<Msg> dec_subscription_failure(PerReader& r) {
  SubscriptionFailure m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto c = dec_cause(r);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

template <typename T>
void enc_sub_delete(PerWriter& w, const T& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
}

template <typename T>
Result<Msg> dec_sub_delete(PerReader& r) {
  T m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  return Msg{m};
}

void enc(PerWriter& w, const SubscriptionDeleteRequest& m) {
  enc_sub_delete(w, m);
}
void enc(PerWriter& w, const SubscriptionDeleteResponse& m) {
  enc_sub_delete(w, m);
}

void enc(PerWriter& w, const SubscriptionDeleteFailure& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  enc(w, m.cause);
}

Result<Msg> dec_sub_delete_failure(PerReader& r) {
  SubscriptionDeleteFailure m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto c = dec_cause(r);
  if (!c) return c.error();
  m.cause = *c;
  return Msg{m};
}

void enc(PerWriter& w, const Indication& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  w.constrained(m.action_id, 0, 255);
  w.constrained(m.sn, 0, 0xFFFFFFFF);
  w.enumerated(static_cast<std::uint32_t>(m.type), 3);
  w.presence({m.call_process_id.has_value()});
  w.octets(m.header);
  w.octets(m.message);
  if (m.call_process_id) w.octets(*m.call_process_id);
}

Result<Msg> dec_indication(PerReader& r) {
  Indication m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto a = r.constrained(0, 255);
  if (!a) return a.error();
  m.action_id = static_cast<std::uint8_t>(*a);
  auto sn = r.constrained(0, 0xFFFFFFFF);
  if (!sn) return sn.error();
  m.sn = static_cast<std::uint32_t>(*sn);
  auto t = r.enumerated(3);
  if (!t) return t.error();
  m.type = static_cast<ActionType>(*t);
  auto pres = r.presence(1);
  if (!pres) return pres.error();
  auto hdr = r.octets();
  if (!hdr) return hdr.error();
  m.header.assign(hdr->begin(), hdr->end());
  auto msg = r.octets();
  if (!msg) return msg.error();
  m.message.assign(msg->begin(), msg->end());
  if ((*pres)[0]) {
    auto cpid = r.octets();
    if (!cpid) return cpid.error();
    m.call_process_id = Buffer(cpid->begin(), cpid->end());
  }
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const ControlRequest& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  w.boolean(m.ack_requested);
  w.presence({m.call_process_id.has_value()});
  w.octets(m.header);
  w.octets(m.message);
  if (m.call_process_id) w.octets(*m.call_process_id);
}

Result<Msg> dec_control_request(PerReader& r) {
  ControlRequest m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto ack = r.boolean();
  if (!ack) return ack.error();
  m.ack_requested = *ack;
  auto pres = r.presence(1);
  if (!pres) return pres.error();
  auto hdr = r.octets();
  if (!hdr) return hdr.error();
  m.header.assign(hdr->begin(), hdr->end());
  auto msg = r.octets();
  if (!msg) return msg.error();
  m.message.assign(msg->begin(), msg->end());
  if ((*pres)[0]) {
    auto cpid = r.octets();
    if (!cpid) return cpid.error();
    m.call_process_id = Buffer(cpid->begin(), cpid->end());
  }
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const ControlAck& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  w.octets(m.outcome);
}

Result<Msg> dec_control_ack(PerReader& r) {
  ControlAck m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto out = r.octets();
  if (!out) return out.error();
  m.outcome.assign(out->begin(), out->end());
  return Msg{std::move(m)};
}

void enc(PerWriter& w, const ControlFailure& m) {
  enc(w, m.request);
  w.constrained(m.ran_function_id, 0, 4095);
  enc(w, m.cause);
  w.octets(m.outcome);
}

Result<Msg> dec_control_failure(PerReader& r) {
  ControlFailure m;
  auto id = dec_req_id(r);
  if (!id) return id.error();
  m.request = *id;
  auto f = r.constrained(0, 4095);
  if (!f) return f.error();
  m.ran_function_id = static_cast<std::uint16_t>(*f);
  auto c = dec_cause(r);
  if (!c) return c.error();
  m.cause = *c;
  auto out = r.octets();
  if (!out) return out.error();
  m.outcome.assign(out->begin(), out->end());
  return Msg{std::move(m)};
}

// --------------------------- codec object ---------------------------------

// @hotpath decode runs once per received frame (paper §5.3)
class PerCodec final : public Codec {
 public:
  [[nodiscard]] WireFormat format() const noexcept override {
    return WireFormat::per;
  }

  [[nodiscard]] Result<Buffer> encode(const Msg& m) const override {
    PerWriter w;
    w.constrained(static_cast<std::uint64_t>(msg_type(m)), 0,
                  kNumMsgTypes - 1);
    std::visit([&w](const auto& msg) { enc(w, msg); }, m);
    return w.take();
  }

  [[nodiscard]] Result<Msg> decode(BytesView wire) const override {
    PerReader r(wire);
    auto tag = r.constrained(0, kNumMsgTypes - 1);
    if (!tag) return tag.error();
    switch (static_cast<MsgType>(*tag)) {
      case MsgType::setup_request: return dec_setup_request(r);
      case MsgType::setup_response: return dec_setup_response(r);
      case MsgType::setup_failure: return dec_setup_failure(r);
      case MsgType::reset_request: return dec_reset_request(r);
      case MsgType::reset_response: return dec_reset_response(r);
      case MsgType::error_indication: return dec_error_indication(r);
      case MsgType::service_update: return dec_service_update(r);
      case MsgType::service_update_ack: return dec_service_update_ack(r);
      case MsgType::service_update_failure:
        return dec_service_update_failure(r);
      case MsgType::node_config_update: return dec_node_config_update(r);
      case MsgType::node_config_update_ack:
        return dec_node_config_update_ack(r);
      case MsgType::subscription_request: return dec_subscription_request(r);
      case MsgType::subscription_response: return dec_subscription_response(r);
      case MsgType::subscription_failure: return dec_subscription_failure(r);
      case MsgType::subscription_delete_request:
        return dec_sub_delete<SubscriptionDeleteRequest>(r);
      case MsgType::subscription_delete_response:
        return dec_sub_delete<SubscriptionDeleteResponse>(r);
      case MsgType::subscription_delete_failure:
        return dec_sub_delete_failure(r);
      case MsgType::indication: return dec_indication(r);
      case MsgType::control_request: return dec_control_request(r);
      case MsgType::control_ack: return dec_control_ack(r);
      case MsgType::control_failure: return dec_control_failure(r);
    }
    return Error{Errc::malformed, "unknown E2AP message type"};
  }

  [[nodiscard]] Result<MsgType> peek_type(BytesView wire) const override {
    PerReader r(wire);
    auto tag = r.constrained(0, kNumMsgTypes - 1);
    if (!tag) return tag.error();
    return static_cast<MsgType>(*tag);
  }
};

}  // namespace

const Codec& per_codec() {
  static const PerCodec c;
  return c;
}

}  // namespace flexric::e2ap
