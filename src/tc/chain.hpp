// Traffic-control chain (paper Fig. 10): the datapath element the TC SM
// configures, sitting between SDAP and the RLC DRB buffer.
//
//   SDAP → [classifier → queues → scheduler → pacer] → RLC → MAC
//
// In transparent mode (the default) it is a single FIFO drained every TTI —
// behaviourally identical to feeding RLC directly. The TC xApp of §6.1.1
// reconfigures it at runtime: a second FIFO queue, a 5-tuple filter for the
// low-latency flow, a round-robin scheduler, and the 5G-BDP pacer that keeps
// the RLC buffer uncongested by backlogging packets here instead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "e2sm/tc_sm.hpp"
#include "ran/packet.hpp"
#include "ran/rlc.hpp"

namespace flexric::tc {

using e2sm::tc::FilterConf;
using e2sm::tc::PacerConf;
using e2sm::tc::PacerKind;
using e2sm::tc::QueueConf;
using e2sm::tc::QueueKind;
using e2sm::tc::SchedConf;
using e2sm::tc::SchedKind;

/// One TC queue (FIFO or CoDel-style early-drop FIFO).
class TcQueue {
 public:
  explicit TcQueue(QueueConf conf) : conf_(conf) {}

  bool enqueue(ran::Packet p, Nanos now);
  /// Dequeue the head packet if any; CoDel queues may drop stale heads
  /// first. Sojourn statistics are recorded at dequeue time.
  bool dequeue(ran::Packet* out, Nanos now);
  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::uint32_t backlog_bytes() const noexcept {
    return backlog_bytes_;
  }
  [[nodiscard]] std::uint32_t backlog_pkts() const noexcept {
    return static_cast<std::uint32_t>(q_.size());
  }
  [[nodiscard]] const QueueConf& conf() const noexcept { return conf_; }

  e2sm::tc::QueueStats stats_snapshot(bool reset_period);

 private:
  QueueConf conf_;
  std::deque<ran::Packet> q_;
  std::uint32_t backlog_bytes_ = 0;
  // CoDel state
  Nanos first_above_ = 0;
  // stats
  std::uint64_t tx_bytes_ = 0, tx_pkts_ = 0, dropped_ = 0;
  double sojourn_sum_ms_ = 0.0, sojourn_max_ms_ = 0.0;
  std::uint32_t sojourn_count_ = 0;
};

/// The whole chain for one DRB.
class TcChain {
 public:
  /// Starts in transparent mode: one FIFO (qid 0), no pacer, RR scheduler.
  TcChain();

  // -- control plane (driven by the TC SM RAN function) --
  Status add_queue(const QueueConf& conf);
  Status del_queue(std::uint32_t qid);
  Status add_filter(const FilterConf& conf);
  Status del_filter(std::uint32_t filter_id);
  void set_sched(const SchedConf& conf) { sched_ = conf; }
  void set_pacer(const PacerConf& conf) { pacer_ = conf; }
  [[nodiscard]] const PacerConf& pacer() const noexcept { return pacer_; }
  [[nodiscard]] std::size_t num_queues() const noexcept {
    return queues_.size();
  }

  // -- data plane --
  /// Classify + enqueue one downlink packet. False = dropped (queue full).
  bool enqueue(ran::Packet p, Nanos now);

  /// Per-TTI drain towards the RLC entity. `service_rate_mbps` is the
  /// recent MAC service rate of this bearer, used by the BDP pacer to size
  /// the RLC target backlog.
  void drain(ran::RlcEntity& rlc, Nanos now, double service_rate_mbps);

  /// Invoked for packets lost downstream of the chain (RLC buffer full
  /// during drain) — the loss signal window-based senders react to.
  using DropHandler = std::function<void(const ran::Packet&)>;
  void set_drop_handler(DropHandler h) { drop_cb_ = std::move(h); }

  /// Total bytes waiting in TC queues (the pacer's backlog).
  [[nodiscard]] std::uint32_t backlog_bytes() const noexcept;

  /// Current pacing budget report for the TC SM indication.
  [[nodiscard]] double pacer_rate_mbps() const noexcept {
    return last_pacer_rate_mbps_;
  }

  std::vector<e2sm::tc::QueueStats> stats_snapshot(bool reset_period);

 private:
  std::uint32_t classify(const ran::Packet& p) const;
  bool pull_next(ran::Packet* out, Nanos now);

  std::map<std::uint32_t, TcQueue> queues_;
  std::vector<FilterConf> filters_;  // sorted by precedence
  SchedConf sched_;
  PacerConf pacer_;
  DropHandler drop_cb_;
  std::size_t rr_cursor_ = 0;
  double last_pacer_rate_mbps_ = 0.0;
  std::map<std::uint32_t, std::uint32_t> wrr_credit_;
};

}  // namespace flexric::tc
