#include "tc/chain.hpp"

#include <algorithm>

namespace flexric::tc {

namespace {

/// CoDel-style parameters (no config knobs exposed; the SM selects the
/// queue kind only, like Linux's default codel).
constexpr double kCodelTargetMs = 5.0;
constexpr Nanos kCodelInterval = 100 * kMilli;

bool tuple_matches(const e2sm::tc::FiveTuple& rule,
                   const e2sm::tc::FiveTuple& pkt) {
  auto m = [](auto rule_v, auto pkt_v) { return rule_v == 0 || rule_v == pkt_v; };
  return m(rule.src_ip, pkt.src_ip) && m(rule.dst_ip, pkt.dst_ip) &&
         m(rule.src_port, pkt.src_port) && m(rule.dst_port, pkt.dst_port) &&
         m(rule.proto, pkt.proto);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcQueue
// ---------------------------------------------------------------------------

bool TcQueue::enqueue(ran::Packet p, Nanos now) {
  if (backlog_bytes_ + p.size_bytes > conf_.limit_bytes) {
    dropped_++;
    return false;
  }
  p.enqueued = now;
  backlog_bytes_ += p.size_bytes;
  q_.push_back(p);
  return true;
}

bool TcQueue::dequeue(ran::Packet* out, Nanos now) {
  while (!q_.empty()) {
    ran::Packet head = q_.front();
    double sojourn_ms = static_cast<double>(now - head.enqueued) /
                        static_cast<double>(kMilli);
    if (conf_.kind == QueueKind::codel && sojourn_ms > kCodelTargetMs) {
      // Simplified CoDel: once the head has been above target for a full
      // interval, drop heads until below target.
      if (first_above_ == 0) {
        first_above_ = now;
      } else if (now - first_above_ > kCodelInterval) {
        q_.pop_front();
        backlog_bytes_ -= head.size_bytes;
        dropped_++;
        continue;
      }
    } else {
      first_above_ = 0;
    }
    q_.pop_front();
    backlog_bytes_ -= head.size_bytes;
    tx_bytes_ += head.size_bytes;
    tx_pkts_++;
    sojourn_sum_ms_ += sojourn_ms;
    sojourn_max_ms_ = std::max(sojourn_max_ms_, sojourn_ms);
    sojourn_count_++;
    *out = head;
    return true;
  }
  return false;
}

e2sm::tc::QueueStats TcQueue::stats_snapshot(bool reset_period) {
  e2sm::tc::QueueStats s;
  s.qid = conf_.qid;
  s.backlog_bytes = backlog_bytes_;
  s.backlog_pkts = backlog_pkts();
  s.sojourn_avg_ms =
      sojourn_count_ > 0
          ? sojourn_sum_ms_ / static_cast<double>(sojourn_count_)
          : 0.0;
  s.sojourn_max_ms = sojourn_max_ms_;
  s.tx_bytes = tx_bytes_;
  s.tx_pkts = tx_pkts_;
  s.dropped_pkts = dropped_;
  if (reset_period) {
    sojourn_sum_ms_ = 0.0;
    sojourn_max_ms_ = 0.0;
    sojourn_count_ = 0;
  }
  return s;
}

// ---------------------------------------------------------------------------
// TcChain
// ---------------------------------------------------------------------------

TcChain::TcChain() {
  QueueConf default_q;
  default_q.qid = 0;
  default_q.kind = QueueKind::fifo;
  queues_.emplace(0u, TcQueue(default_q));
  sched_.kind = SchedKind::rr;
  pacer_.kind = PacerKind::none;
}

Status TcChain::add_queue(const QueueConf& conf) {
  if (queues_.count(conf.qid) > 0)
    return {Errc::already_exists, "queue id in use"};
  queues_.emplace(conf.qid, TcQueue(conf));
  return Status::ok();
}

Status TcChain::del_queue(std::uint32_t qid) {
  if (qid == 0) return {Errc::rejected, "default queue cannot be removed"};
  auto it = queues_.find(qid);
  if (it == queues_.end()) return {Errc::not_found, "no such queue"};
  if (!it->second.empty())
    return {Errc::rejected, "queue not empty"};
  queues_.erase(it);
  std::erase_if(filters_,
                [qid](const FilterConf& f) { return f.dst_qid == qid; });
  return Status::ok();
}

Status TcChain::add_filter(const FilterConf& conf) {
  for (const auto& f : filters_)
    if (f.filter_id == conf.filter_id)
      return {Errc::already_exists, "filter id in use"};
  if (queues_.count(conf.dst_qid) == 0)
    return {Errc::not_found, "destination queue missing"};
  filters_.push_back(conf);
  std::stable_sort(filters_.begin(), filters_.end(),
                   [](const FilterConf& a, const FilterConf& b) {
                     return a.precedence < b.precedence;
                   });
  return Status::ok();
}

Status TcChain::del_filter(std::uint32_t filter_id) {
  auto n = std::erase_if(filters_, [filter_id](const FilterConf& f) {
    return f.filter_id == filter_id;
  });
  return n > 0 ? Status::ok() : Status{Errc::not_found, "no such filter"};
}

std::uint32_t TcChain::classify(const ran::Packet& p) const {
  for (const auto& f : filters_)
    if (tuple_matches(f.match, p.tuple)) return f.dst_qid;
  return 0;  // default queue
}

bool TcChain::enqueue(ran::Packet p, Nanos now) {
  std::uint32_t qid = classify(p);
  auto it = queues_.find(qid);
  if (it == queues_.end()) it = queues_.find(0);
  return it->second.enqueue(p, now);
}

bool TcChain::pull_next(ran::Packet* out, Nanos now) {
  if (queues_.empty()) return false;
  switch (sched_.kind) {
    case SchedKind::prio: {
      // Lower qid = higher priority.
      for (auto& [qid, q] : queues_)
        if (q.dequeue(out, now)) return true;
      return false;
    }
    case SchedKind::wrr: {
      // Deficit-style: each round gives queue i `weights[i]` packets.
      for (std::size_t attempts = 0; attempts < 2 * queues_.size();
           ++attempts) {
        auto it = queues_.begin();
        std::advance(it, static_cast<long>(rr_cursor_ % queues_.size()));
        std::uint32_t weight = 1;
        if (rr_cursor_ % queues_.size() < sched_.weights.size())
          weight = std::max(1u, sched_.weights[rr_cursor_ % queues_.size()]);
        std::uint32_t& credit = wrr_credit_[it->first];
        if (credit >= weight || it->second.empty()) {
          credit = 0;
          rr_cursor_++;
          continue;
        }
        if (it->second.dequeue(out, now)) {
          credit++;
          return true;
        }
        rr_cursor_++;
      }
      return false;
    }
    case SchedKind::rr:
    default: {
      // Round robin over active queues, one packet per visit.
      for (std::size_t attempts = 0; attempts < queues_.size(); ++attempts) {
        auto it = queues_.begin();
        std::advance(it, static_cast<long>(rr_cursor_ % queues_.size()));
        rr_cursor_++;
        if (it->second.dequeue(out, now)) return true;
      }
      return false;
    }
  }
}

void TcChain::drain(ran::RlcEntity& rlc, Nanos now,
                    double service_rate_mbps) {
  std::uint64_t budget = UINT64_MAX;  // transparent: move everything
  if (pacer_.kind == PacerKind::bdp) {
    // 5G-BDP pacing: keep the RLC backlog near `target_ms` worth of data at
    // the current service rate — enough not to starve the MAC, small enough
    // not to bloat. Packets beyond that stay backlogged here, where
    // per-queue scheduling can still reorder them.
    double rate_bps = std::max(service_rate_mbps, 0.1) * 1e6;
    double target_bytes = rate_bps / 8.0 * (pacer_.target_ms / 1e3) *
                          std::max(pacer_.gain, 0.1);
    double room = target_bytes - static_cast<double>(rlc.buffer_bytes());
    budget = room > 0 ? static_cast<std::uint64_t>(room) : 0;
    last_pacer_rate_mbps_ = rate_bps / 1e6;
  } else {
    last_pacer_rate_mbps_ = 0.0;
  }
  while (budget > 0) {
    ran::Packet p;
    if (!pull_next(&p, now)) break;
    if (p.size_bytes > budget && pacer_.kind == PacerKind::bdp &&
        rlc.buffer_bytes() > 0) {
      // Would overshoot the target: put it back is not possible with the
      // queue abstraction, so allow the final packet through (classic
      // byte-granularity slop, bounded by one MTU).
    }
    budget = p.size_bytes >= budget ? 0 : budget - p.size_bytes;
    if (!rlc.enqueue(p, now) && drop_cb_) drop_cb_(p);
  }
}

std::uint32_t TcChain::backlog_bytes() const noexcept {
  std::uint32_t total = 0;
  for (const auto& [qid, q] : queues_) total += q.backlog_bytes();
  return total;
}

std::vector<e2sm::tc::QueueStats> TcChain::stats_snapshot(bool reset_period) {
  std::vector<e2sm::tc::QueueStats> out;
  out.reserve(queues_.size());
  for (auto& [qid, q] : queues_) out.push_back(q.stats_snapshot(reset_period));
  return out;
}

}  // namespace flexric::tc
