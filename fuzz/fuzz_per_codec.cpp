// Deterministic structure-aware fuzz driver for the ASN.1-PER E2AP codec.
#include "fuzz_codec_driver.hpp"

int main(int argc, char** argv) {
  auto cfg = flexric::fuzz::parse_args(argc, argv);
  return flexric::fuzz::run_codec_fuzz(flexric::e2ap::per_codec(), cfg,
                                       "fuzz_per_codec");
}
