// Shared attack loop for the per-codec fuzz drivers.
//
// Per iteration: generate a random IR message, encode it, then
//   1. assert the clean round-trip (decode(encode(m)) == m),
//   2. decode a strict prefix        -> MUST return an error Result,
//   3. decode a bit-flipped frame    -> error or success, never a crash,
//   4. decode a length-corrupted frame -> error or success, never a crash,
//   5. decode fully random bytes     -> error or success, never a crash.
// Whenever an adversarial decode "succeeds", the decoded IR is re-encoded to
// exercise the encoder against adversarially derived values. All asserts are
// plain process exits; memory/UB violations are caught by the sanitizer
// build (FLEXRIC_SANITIZE=address;undefined).
#pragma once

#include "e2ap/codec.hpp"
#include "fuzz_common.hpp"

namespace flexric::fuzz {

inline int run_codec_fuzz(const e2ap::Codec& codec, const DriverConfig& cfg,
                          const char* label) {
  Rng rng(cfg.seed);
  Tally flip, length, random;
  for (std::size_t i = 0; i < cfg.iters; ++i) {
    e2ap::Msg msg = random_msg(rng);
    auto wire = codec.encode(msg);
    if (!wire) fail("encode of a valid IR message failed", i);

    auto rt = codec.decode(*wire);
    if (!rt) fail("decode of a freshly encoded frame failed", i);
    if (!(*rt == msg)) fail("decode(encode(m)) != m", i);

    // Strict prefixes: both codecs consume their whole encoding, so success
    // here means the decoder read fields it never received.
    auto trunc = codec.decode(truncate(*wire, rng));
    if (trunc.is_ok()) fail("decode succeeded on a strict prefix", i);

    auto reencode_if_ok = [&](const Result<e2ap::Msg>& d) {
      if (!d) return;
      auto re = codec.encode(*d);
      if (!re) fail("re-encode of adversarially decoded IR failed", i);
    };

    auto flipped = codec.decode(bit_flip(*wire, rng));
    flip.count(flipped.is_ok());
    reencode_if_ok(flipped);

    auto corrupted = codec.decode(corrupt_length_field(*wire, rng));
    length.count(corrupted.is_ok());
    reencode_if_ok(corrupted);

    auto garbage = codec.decode(random_wire(rng, 96));
    random.count(garbage.is_ok());
    reencode_if_ok(garbage);
  }
  std::printf(
      "%s: %zu iterations ok (seed 0x%llx)\n"
      "  bit-flip: %zu decoded / %zu rejected\n"
      "  length-corrupt: %zu decoded / %zu rejected\n"
      "  random: %zu decoded / %zu rejected\n",
      label, cfg.iters, static_cast<unsigned long long>(cfg.seed), flip.ok,
      flip.err, length.ok, length.err, random.ok, random.err);
  return 0;
}

}  // namespace flexric::fuzz
