// Differential fuzz harness: the PER and FLAT codecs must agree.
//
// The paper's core claim for the E2AP IR (§4.3) is that the encoding is
// interchangeable without loss of information. This driver checks exactly
// that, per random message m:
//   per.decode(per.encode(m))   == m
//   flat.decode(flat.encode(m)) == m
//   per-decoded IR == flat-decoded IR   (cross-codec semantic equality)
// plus a cross-feed sanity leg: handing one codec's frames to the other must
// produce a Result (usually an error), never a crash.
#include "e2ap/codec.hpp"
#include "fuzz_common.hpp"

int main(int argc, char** argv) {
  using namespace flexric;
  using namespace flexric::fuzz;
  auto cfg = parse_args(argc, argv);
  const e2ap::Codec& per = e2ap::per_codec();
  const e2ap::Codec& flat = e2ap::flat_codec();

  Rng rng(cfg.seed);
  Tally cross;
  std::size_t per_bytes = 0, flat_bytes = 0;
  for (std::size_t i = 0; i < cfg.iters; ++i) {
    e2ap::Msg msg = random_msg(rng);

    auto per_wire = per.encode(msg);
    if (!per_wire) fail("PER encode failed", i);
    auto flat_wire = flat.encode(msg);
    if (!flat_wire) fail("FLAT encode failed", i);

    auto per_dec = per.decode(*per_wire);
    if (!per_dec) fail("PER decode of own frame failed", i);
    if (!(*per_dec == msg)) fail("PER round-trip mismatch", i);

    auto flat_dec = flat.decode(*flat_wire);
    if (!flat_dec) fail("FLAT decode of own frame failed", i);
    if (!(*flat_dec == msg)) fail("FLAT round-trip mismatch", i);

    if (!(*per_dec == *flat_dec))
      fail("cross-codec disagreement: PER and FLAT decoded different IR", i);

    // Cross-feed: one codec's bytes through the other decoder. A valid PER
    // frame is arbitrary garbage from FLAT's point of view (and vice versa);
    // any outcome but a clean Result is a bug.
    cross.count(flat.decode(*per_wire).is_ok());
    cross.count(per.decode(*flat_wire).is_ok());

    per_bytes += per_wire->size();
    flat_bytes += flat_wire->size();
  }
  std::printf(
      "fuzz_differential: %zu iterations ok (seed 0x%llx)\n"
      "  avg wire size: PER %.1f B, FLAT %.1f B\n"
      "  cross-feed: %zu decoded / %zu rejected\n",
      cfg.iters, static_cast<unsigned long long>(cfg.seed),
      static_cast<double>(per_bytes) / static_cast<double>(cfg.iters),
      static_cast<double>(flat_bytes) / static_cast<double>(cfg.iters),
      cross.ok, cross.err);
  return 0;
}
