// Deterministic, structure-aware fuzzing harness for the E2AP wire codecs.
//
// No libFuzzer dependency: each driver is a plain executable that loops a
// seeded xoshiro PRNG (common/rng.hpp), so every run — locally and in CI —
// replays the identical input sequence. The harness generates random but
// constraint-respecting e2ap::Msg instances across all 21 procedures, then
// attacks the decoders with truncated, bit-flipped, length-field-corrupted
// and fully random inputs. Decoders must uphold the contract of
// DESIGN.md §6: a Result error on bad input, never a crash, abort or UB
// (sanitizer builds turn any violation into a hard failure).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/buffer.hpp"
#include "common/rng.hpp"
#include "e2ap/messages.hpp"

namespace flexric::fuzz {

// ------------------------- random IR generation ----------------------------
// Values stay inside the ranges both codecs can represent (the PER encoder
// enforces its X.691 constraints with encode-side preconditions), so every
// generated Msg must round-trip through either codec.

inline Buffer rand_buf(Rng& rng, std::size_t max_len) {
  Buffer b(rng.bounded(max_len + 1));
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next());
  return b;
}

inline std::string rand_str(Rng& rng, std::size_t max_len) {
  std::string s(rng.bounded(max_len + 1), '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.bounded(26));
  return s;
}

inline e2ap::GlobalNodeId rand_node_id(Rng& rng) {
  e2ap::GlobalNodeId id;
  id.plmn = static_cast<std::uint32_t>(rng.bounded(0xFFFFFF + 1ULL));
  id.nb_id = static_cast<std::uint32_t>(rng.bounded(0xFFFFFFF + 1ULL));
  id.type = static_cast<e2ap::NodeType>(rng.bounded(4));
  return id;
}

inline e2ap::Cause rand_cause(Rng& rng) {
  return {static_cast<e2ap::Cause::Group>(rng.bounded(4)),
          static_cast<std::uint8_t>(rng.next())};
}

inline e2ap::RicRequestId rand_req_id(Rng& rng) {
  return {static_cast<std::uint16_t>(rng.next()),
          static_cast<std::uint16_t>(rng.next())};
}

inline e2ap::RanFunctionItem rand_ran_function(Rng& rng) {
  e2ap::RanFunctionItem f;
  f.id = static_cast<std::uint16_t>(rng.bounded(4096));
  f.revision = static_cast<std::uint16_t>(rng.bounded(4096));
  f.name = rand_str(rng, 24);
  f.definition = rand_buf(rng, 48);
  return f;
}

inline e2ap::Action rand_action(Rng& rng) {
  e2ap::Action a;
  a.id = static_cast<std::uint8_t>(rng.next());
  a.type = static_cast<e2ap::ActionType>(rng.bounded(3));
  a.definition = rand_buf(rng, 48);
  return a;
}

inline std::vector<std::uint16_t> rand_fn_id_list(Rng& rng) {
  std::vector<std::uint16_t> v(rng.bounded(6));
  for (auto& x : v) x = static_cast<std::uint16_t>(rng.bounded(4096));
  return v;
}

inline std::vector<std::pair<std::uint16_t, e2ap::Cause>> rand_fn_cause_list(
    Rng& rng) {
  std::vector<std::pair<std::uint16_t, e2ap::Cause>> v(rng.bounded(6));
  for (auto& [id, c] : v) {
    id = static_cast<std::uint16_t>(rng.bounded(4096));
    c = rand_cause(rng);
  }
  return v;
}

/// A random, constraint-respecting IR message; uniform over all 21 types.
inline e2ap::Msg random_msg(Rng& rng) {
  using namespace e2ap;
  auto trans = [&rng] { return static_cast<std::uint8_t>(rng.next()); };
  switch (static_cast<MsgType>(rng.bounded(kNumMsgTypes))) {
    case MsgType::setup_request: {
      SetupRequest m;
      m.trans_id = trans();
      m.node = rand_node_id(rng);
      m.ran_functions.resize(rng.bounded(4));
      for (auto& f : m.ran_functions) f = rand_ran_function(rng);
      return m;
    }
    case MsgType::setup_response: {
      SetupResponse m;
      m.trans_id = trans();
      m.ric_id = static_cast<std::uint32_t>(rng.bounded(0xFFFFF + 1ULL));
      m.accepted = rand_fn_id_list(rng);
      m.rejected = rand_fn_cause_list(rng);
      return m;
    }
    case MsgType::setup_failure: {
      SetupFailure m;
      m.trans_id = trans();
      m.cause = rand_cause(rng);
      return m;
    }
    case MsgType::reset_request: {
      ResetRequest m;
      m.trans_id = trans();
      m.cause = rand_cause(rng);
      return m;
    }
    case MsgType::reset_response: {
      ResetResponse m;
      m.trans_id = trans();
      return m;
    }
    case MsgType::error_indication: {
      ErrorIndication m;
      if (rng.chance(0.5)) m.request = rand_req_id(rng);
      if (rng.chance(0.5))
        m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.cause = rand_cause(rng);
      return m;
    }
    case MsgType::service_update: {
      ServiceUpdate m;
      m.trans_id = trans();
      m.added.resize(rng.bounded(3));
      for (auto& f : m.added) f = rand_ran_function(rng);
      m.modified.resize(rng.bounded(3));
      for (auto& f : m.modified) f = rand_ran_function(rng);
      m.removed = rand_fn_id_list(rng);
      return m;
    }
    case MsgType::service_update_ack: {
      ServiceUpdateAck m;
      m.trans_id = trans();
      m.accepted = rand_fn_id_list(rng);
      m.rejected = rand_fn_cause_list(rng);
      return m;
    }
    case MsgType::service_update_failure: {
      ServiceUpdateFailure m;
      m.trans_id = trans();
      m.cause = rand_cause(rng);
      return m;
    }
    case MsgType::node_config_update: {
      NodeConfigUpdate m;
      m.trans_id = trans();
      m.components.resize(rng.bounded(4));
      for (auto& [name, cfg] : m.components) {
        name = rand_str(rng, 16);
        cfg = rand_buf(rng, 32);
      }
      return m;
    }
    case MsgType::node_config_update_ack: {
      NodeConfigUpdateAck m;
      m.trans_id = trans();
      m.accepted_components.resize(rng.bounded(4));
      for (auto& name : m.accepted_components) name = rand_str(rng, 16);
      return m;
    }
    case MsgType::subscription_request: {
      SubscriptionRequest m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.event_trigger = rand_buf(rng, 48);
      m.actions.resize(rng.bounded(4));
      for (auto& a : m.actions) a = rand_action(rng);
      return m;
    }
    case MsgType::subscription_response: {
      SubscriptionResponse m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.admitted.resize(rng.bounded(5));
      for (auto& id : m.admitted) id = static_cast<std::uint8_t>(rng.next());
      m.not_admitted.resize(rng.bounded(5));
      for (auto& [id, c] : m.not_admitted) {
        id = static_cast<std::uint8_t>(rng.next());
        c = rand_cause(rng);
      }
      return m;
    }
    case MsgType::subscription_failure: {
      SubscriptionFailure m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.cause = rand_cause(rng);
      return m;
    }
    case MsgType::subscription_delete_request: {
      SubscriptionDeleteRequest m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      return m;
    }
    case MsgType::subscription_delete_response: {
      SubscriptionDeleteResponse m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      return m;
    }
    case MsgType::subscription_delete_failure: {
      SubscriptionDeleteFailure m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.cause = rand_cause(rng);
      return m;
    }
    case MsgType::indication: {
      Indication m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.action_id = static_cast<std::uint8_t>(rng.next());
      m.sn = static_cast<std::uint32_t>(rng.next());
      m.type = static_cast<ActionType>(rng.bounded(3));
      m.header = rand_buf(rng, 64);
      m.message = rand_buf(rng, 64);
      if (rng.chance(0.5)) m.call_process_id = rand_buf(rng, 16);
      return m;
    }
    case MsgType::control_request: {
      ControlRequest m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.header = rand_buf(rng, 48);
      m.message = rand_buf(rng, 48);
      m.ack_requested = rng.chance(0.5);
      if (rng.chance(0.5)) m.call_process_id = rand_buf(rng, 16);
      return m;
    }
    case MsgType::control_ack: {
      ControlAck m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.outcome = rand_buf(rng, 48);
      return m;
    }
    case MsgType::control_failure: {
      ControlFailure m;
      m.request = rand_req_id(rng);
      m.ran_function_id = static_cast<std::uint16_t>(rng.bounded(4096));
      m.cause = rand_cause(rng);
      m.outcome = rand_buf(rng, 48);
      return m;
    }
  }
  return e2ap::ResetResponse{};  // unreachable: bounded(kNumMsgTypes)
}

// ------------------------- wire mutators -----------------------------------

/// Strict prefix of a valid frame. Both codecs consume their full encoding,
/// so decoding any strict prefix MUST fail (asserted by the drivers).
inline Buffer truncate(const Buffer& wire, Rng& rng) {
  if (wire.empty()) return wire;
  return Buffer(wire.begin(),
                wire.begin() + static_cast<long>(rng.bounded(wire.size())));
}

/// Flip 1..8 random bits. May still decode successfully (e.g. a flip inside
/// an opaque SM payload); must never crash.
inline Buffer bit_flip(const Buffer& wire, Rng& rng) {
  Buffer out = wire;
  if (out.empty()) return out;
  std::size_t flips = 1 + rng.bounded(8);
  for (std::size_t i = 0; i < flips; ++i)
    out[rng.bounded(out.size())] ^=
        static_cast<std::uint8_t>(1u << rng.bounded(8));
  return out;
}

/// Stomp 1..4 random bytes with adversarial length-shaped values (0xFF, high
/// bit set, large counts). Whatever byte happens to be a PER length
/// determinant, a FLAT size prefix / var-slot (offset,len) or a list count
/// gets inflated far beyond the actual payload.
inline Buffer corrupt_length_field(const Buffer& wire, Rng& rng) {
  Buffer out = wire;
  if (out.empty()) return out;
  static constexpr std::uint8_t kEvil[] = {0xFF, 0xFE, 0x80, 0x7F, 0x40, 0xBF};
  std::size_t stomps = 1 + rng.bounded(4);
  for (std::size_t i = 0; i < stomps; ++i)
    out[rng.bounded(out.size())] = kEvil[rng.bounded(sizeof kEvil)];
  return out;
}

/// Fully random garbage, occasionally starting with a valid-looking tag.
inline Buffer random_wire(Rng& rng, std::size_t max_len) {
  Buffer b = rand_buf(rng, max_len);
  if (!b.empty() && rng.chance(0.25))
    b[0] = static_cast<std::uint8_t>(rng.bounded(e2ap::kNumMsgTypes));
  return b;
}

// ------------------------- driver scaffolding ------------------------------

struct DriverConfig {
  std::uint64_t seed = 0xF1EC5EEDULL;
  std::size_t iters = 100000;
};

/// Parse --seed N / --iters N; exits on malformed arguments so CTest
/// misconfiguration is loud.
inline DriverConfig parse_args(int argc, char** argv) {
  DriverConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next_u64 = [&](const char* flag) -> std::uint64_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 0);
    };
    if (std::strcmp(a, "--seed") == 0) {
      cfg.seed = next_u64("--seed");
    } else if (std::strcmp(a, "--iters") == 0) {
      cfg.iters = static_cast<std::size_t>(next_u64("--iters"));
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--iters N]\n", argv[0]);
      std::exit(2);
    }
  }
  return cfg;
}

/// Tally of decode outcomes per attack strategy; printed at exit so a run's
/// coverage is visible in the CTest log.
struct Tally {
  std::size_t ok = 0;
  std::size_t err = 0;
  void count(bool decoded_ok) { decoded_ok ? ++ok : ++err; }
};

/// Hard failure: print and abort the driver with a nonzero exit code.
[[noreturn]] inline void fail(const char* what, std::size_t iter) {
  std::fprintf(stderr, "FUZZ FAILURE at iteration %zu: %s\n", iter, what);
  std::exit(1);
}

}  // namespace flexric::fuzz
