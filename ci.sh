#!/usr/bin/env sh
# CI entry point: the tier-1 matrix, twice — plus an opt-in chaos soak.
#
#   1. plain        RelWithDebInfo, the configuration ROADMAP.md documents
#   2. asan-ubsan   FLEXRIC_SANITIZE=address;undefined with
#                   -fno-sanitize-recover=all, so any ASan/UBSan finding in
#                   the unit tests, the fuzz battery, or the differential
#                   harness fails the run hard
#
# Both legs run the full ctest suite, which includes the deterministic fuzz
# drivers (fuzz/), the telemetry store suite (test_telemetry — built into
# both legs via flexric_telemetry), and the repo lint gate (tools/lint.py).
#
# Every leg also runs the static-analysis gates: tools/analyze (the
# reactor-affinity & lambda-lifetime analyzer, CTest targets `analyze` and
# `analyze_fixtures`) builds and runs in each configuration; the asan-ubsan
# leg additionally compiles the FLEXRIC_AFFINITY_GUARDS runtime checks in
# (FLEXRIC_SANITIZE implies guards via the AUTO default), so test_affinity's
# death tests execute there.
#
# Usage: ./ci.sh [jobs] [--quick] [--chaos] [--overload] [--tidy]
#   --quick     configure FLEXRIC_FUZZ_ITERS=1000 for a fast local smoke run;
#               without it the fuzz battery keeps the CI default (100k).
#   --chaos     add a resilience soak after the matrix: test_resilience over a
#               wide seeded fault schedule (FLEXRIC_CHAOS_SEEDS), on the plain
#               build AND under TSan — the reconnect/heartbeat/replay machinery
#               is all timer-driven callbacks, exactly where a latent data race
#               would hide. A failure prints the seed that reproduces it.
#   --overload  add an indication-storm soak: test_overload over a wide seeded
#               storm schedule (FLEXRIC_STORM_SEEDS sweeps 1x/4x/16x/64x storm
#               multipliers), on the plain build AND under TSan — admission,
#               shedding and quarantine all run inside reactor callbacks, the
#               same place a race would hide. Each seed runs twice and the
#               traces must match bit-for-bit (DESIGN.md §11).
#   --tidy      opt-in clang-tidy lane over src/ using the .clang-tidy config
#               (bugprone-*, performance-*, misc-unused-*) and the plain leg's
#               compile_commands.json. Skipped with a notice when clang-tidy is
#               not installed, so the core matrix never depends on it.
#   --analyze   standalone static-analysis lane: build only flexric-analyze,
#               run the full tree scan against the committed hot-path
#               allocation baseline (tools/analyze/hotpath_baseline.txt),
#               emit the machine-readable --json report, audit every
#               lint: allow(...) suppression with --list, diff the fixture
#               corpus and self-scan the analyzer's own sources. Fast enough
#               for a pre-push hook; the default run executes the same lane
#               after the plain leg, so findings gate CI either way.
#   --supervise standalone shard-supervision lane (DESIGN.md §15): the
#               watchdog/quarantine/recovery suite (test_supervision) on the
#               plain build AND under TSan — heartbeat publishes, health
#               reads, epoch-guarded counter publishes and the rebuild
#               handoff are exactly where a latent race would hide. The
#               suite's 12-seed chaos soak (wedge/crash faults over 1/2/4
#               shards) runs every seed twice and the traces must match
#               byte-for-byte; MTTR and ledger exactness are asserted per
#               seed. The default matrix already runs test_supervision in
#               both ctest legs as the smoke tier; this lane adds TSan.
#   --shard     standalone sharded-RIC lane (DESIGN.md §13): TSan build of the
#               sharding suite, then (1) test_sharding — partitioner, SPSC
#               rings (incl. the two-thread hammer, a real race under TSan),
#               ShardPool, sharded delivery/fan-out/misroute/ledger/resync and
#               the multi-shard determinism matrix, (2) the affinity death
#               tests (per-shard domains abort with the offended shard's
#               name), (3) the sharded chaos + storm soaks pinned to 4 shards
#               via FLEXRIC_SHARD_COUNT — every seed runs twice and the
#               traces must match byte-for-byte, (4) the static analyzer:
#               tree scan (the @affine(shard) domain-ownership proof) and the
#               fixture golden file.
set -eu

jobs=""
fuzz_iters=100000
chaos=0
overload=0
tidy=0
analyze=0
shard=0
supervise=0
for arg in "$@"; do
  case "$arg" in
    --quick) fuzz_iters=1000 ;;
    --chaos) chaos=1 ;;
    --overload) overload=1 ;;
    --tidy) tidy=1 ;;
    --analyze) analyze=1 ;;
    --shard) shard=1 ;;
    --supervise) supervise=1 ;;
    *) jobs=$arg ;;
  esac
done
[ -n "$jobs" ] || jobs=$(nproc 2>/dev/null || echo 4)
root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

# 64 seeds for the soaks (the in-tree default is 12); override by exporting
# FLEXRIC_CHAOS_SEEDS / FLEXRIC_STORM_SEEDS yourself before invoking ci.sh.
default_chaos_seeds=$(seq -s, 1 64)
default_storm_seeds=$(seq -s, 1 64)

run_leg() {
  leg_name=$1
  build_dir=$2
  shift 2
  echo "==== [$leg_name] configure ===="
  cmake -B "$build_dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFLEXRIC_FUZZ_ITERS="$fuzz_iters" "$@"
  echo "==== [$leg_name] build ===="
  cmake --build "$build_dir" -j "$jobs"
  echo "==== [$leg_name] test ===="
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs")
}

run_chaos_leg() {
  leg_name=$1
  build_dir=$2
  echo "==== [$leg_name] chaos soak (FLEXRIC_CHAOS_SEEDS=${FLEXRIC_CHAOS_SEEDS:-$default_chaos_seeds}) ===="
  FLEXRIC_CHAOS_SEEDS="${FLEXRIC_CHAOS_SEEDS:-$default_chaos_seeds}" \
    "$build_dir/tests/test_resilience" --gtest_brief=1
}

run_overload_leg() {
  leg_name=$1
  build_dir=$2
  echo "==== [$leg_name] storm soak (FLEXRIC_STORM_SEEDS=${FLEXRIC_STORM_SEEDS:-$default_storm_seeds}) ===="
  FLEXRIC_STORM_SEEDS="${FLEXRIC_STORM_SEEDS:-$default_storm_seeds}" \
    "$build_dir/tests/test_overload" --gtest_brief=1
}

run_tidy_lane() {
  build_dir=$1
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==== [tidy] clang-tidy not installed; skipping (opt-in lane) ===="
    return 0
  fi
  echo "==== [tidy] clang-tidy over src/ (compile_commands: $build_dir) ===="
  # shellcheck disable=SC2046
  clang-tidy -p "$build_dir" --quiet \
    $(find "$root/src" -name '*.cpp' | sort)
}

run_analyze_lane() {
  build_dir=$1
  echo "==== [analyze] build flexric-analyze ===="
  cmake -B "$build_dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j "$jobs" --target flexric-analyze
  bin="$build_dir/tools/analyze/flexric-analyze"
  echo "==== [analyze] tree scan (baseline: tools/analyze/hotpath_baseline.txt) ===="
  "$bin" --root "$root" --baseline "$root/tools/analyze/hotpath_baseline.txt"
  echo "==== [analyze] json report ===="
  "$bin" --root "$root" --baseline "$root/tools/analyze/hotpath_baseline.txt" --json
  echo "==== [analyze] suppression audit ===="
  "$bin" --root "$root" --list
  python3 "$root/tools/lint.py" --list
  echo "==== [analyze] fixtures ===="
  "$bin" --fixtures "$root/tests/analyze_fixtures"
  echo "==== [analyze] self-scan (tools/analyze dogfoods its own rules) ===="
  "$bin" --self "$root/tools/analyze"
}

run_shard_lane() {
  build_dir=$1
  echo "==== [shard] tsan build ===="
  cmake -B "$build_dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFLEXRIC_FUZZ_ITERS="$fuzz_iters" -DFLEXRIC_SANITIZE="thread"
  cmake --build "$build_dir" -j "$jobs" --target \
    test_sharding test_affinity test_resilience test_overload flexric-analyze
  echo "==== [shard] sharding suite (rings, pool, delivery, determinism) ===="
  "$build_dir/tests/test_sharding" --gtest_brief=1
  echo "==== [shard] affinity guards (per-shard domains) ===="
  "$build_dir/tests/test_affinity" --gtest_brief=1
  echo "==== [shard] chaos soak at 4 shards (double-run determinism) ===="
  FLEXRIC_SHARD_COUNT=4 "$build_dir/tests/test_resilience" \
    --gtest_brief=1 --gtest_filter='*ShardedChaos*'
  echo "==== [shard] storm soak at 4 shards (double-run determinism) ===="
  FLEXRIC_SHARD_COUNT=4 "$build_dir/tests/test_overload" \
    --gtest_brief=1 --gtest_filter='*ShardedStorm*'
  bin="$build_dir/tools/analyze/flexric-analyze"
  echo "==== [shard] analyzer gate (@affine(shard) domain ownership) ===="
  "$bin" --root "$root" --baseline "$root/tools/analyze/hotpath_baseline.txt"
  "$bin" --fixtures "$root/tests/analyze_fixtures"
}

run_supervise_lane() {
  plain_dir=$1
  tsan_dir=$2
  echo "==== [supervise] plain build ===="
  cmake -B "$plain_dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFLEXRIC_SANITIZE=""
  cmake --build "$plain_dir" -j "$jobs" --target test_supervision
  echo "==== [supervise] suite + 12-seed soak (plain, double-run determinism) ===="
  "$plain_dir/tests/test_supervision" --gtest_brief=1
  echo "==== [supervise] tsan build ===="
  cmake -B "$tsan_dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFLEXRIC_FUZZ_ITERS="$fuzz_iters" -DFLEXRIC_SANITIZE="thread"
  cmake --build "$tsan_dir" -j "$jobs" --target test_supervision
  echo "==== [supervise] suite + 12-seed soak (tsan) ===="
  "$tsan_dir/tests/test_supervision" --gtest_brief=1
}

# --analyze is a standalone lane: run it and exit without the full matrix.
if [ "$analyze" -eq 1 ]; then
  run_analyze_lane "$root/build"
  echo "==== ci.sh: analyze lane passed ===="
  exit 0
fi

# --shard is a standalone lane too: the TSan sharding suite + soaks + gate.
if [ "$shard" -eq 1 ]; then
  run_shard_lane "$root/build-tsan"
  echo "==== ci.sh: shard lane passed ===="
  exit 0
fi

# --supervise: the watchdog/quarantine/recovery suite, plain + TSan.
if [ "$supervise" -eq 1 ]; then
  run_supervise_lane "$root/build" "$root/build-tsan"
  echo "==== ci.sh: supervise lane passed ===="
  exit 0
fi

run_leg plain "$root/build" \
  -DFLEXRIC_SANITIZE=""
# The full analysis lane (tree scan, json, suppression audit, fixtures,
# self-scan) is part of the default run — the plain build above already
# produced the binary, so this adds seconds, and a finding fails CI even when
# nobody remembered to pass --analyze.
run_analyze_lane "$root/build"
run_leg asan-ubsan "$root/build-asan" \
  -DFLEXRIC_SANITIZE="address;undefined"

if [ "$tidy" -eq 1 ]; then
  run_tidy_lane "$root/build"
fi

# The TSan build backs both soaks; build (and ctest) it once even when
# --chaos and --overload are both requested.
if [ "$chaos" -eq 1 ] || [ "$overload" -eq 1 ]; then
  run_leg tsan "$root/build-tsan" \
    -DFLEXRIC_SANITIZE="thread"
fi
if [ "$chaos" -eq 1 ]; then
  run_chaos_leg plain-chaos "$root/build"
  run_chaos_leg tsan-chaos "$root/build-tsan"
fi
if [ "$overload" -eq 1 ]; then
  run_overload_leg plain-overload "$root/build"
  run_overload_leg tsan-overload "$root/build-tsan"
fi
if [ "$chaos" -eq 1 ] || [ "$overload" -eq 1 ]; then
  echo "==== ci.sh: matrix + soaks passed ===="
else
  echo "==== ci.sh: both legs passed ===="
fi
