#!/usr/bin/env sh
# CI entry point: the tier-1 matrix, twice.
#
#   1. plain        RelWithDebInfo, the configuration ROADMAP.md documents
#   2. asan-ubsan   FLEXRIC_SANITIZE=address;undefined with
#                   -fno-sanitize-recover=all, so any ASan/UBSan finding in
#                   the unit tests, the fuzz battery, or the differential
#                   harness fails the run hard
#
# Both legs run the full ctest suite, which includes the deterministic fuzz
# drivers (fuzz/), the telemetry store suite (test_telemetry — built into
# both legs via flexric_telemetry), and the repo lint gate (tools/lint.py).
#
# Usage: ./ci.sh [jobs] [--quick]
#   --quick   configure FLEXRIC_FUZZ_ITERS=1000 for a fast local smoke run;
#             without it the fuzz battery keeps the CI default (100k).
set -eu

jobs=""
fuzz_iters=100000
for arg in "$@"; do
  case "$arg" in
    --quick) fuzz_iters=1000 ;;
    *) jobs=$arg ;;
  esac
done
[ -n "$jobs" ] || jobs=$(nproc 2>/dev/null || echo 4)
root=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)

run_leg() {
  leg_name=$1
  build_dir=$2
  shift 2
  echo "==== [$leg_name] configure ===="
  cmake -B "$build_dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFLEXRIC_FUZZ_ITERS="$fuzz_iters" "$@"
  echo "==== [$leg_name] build ===="
  cmake --build "$build_dir" -j "$jobs"
  echo "==== [$leg_name] test ===="
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs")
}

run_leg plain "$root/build" \
  -DFLEXRIC_SANITIZE=""
run_leg asan-ubsan "$root/build-asan" \
  -DFLEXRIC_SANITIZE="address;undefined"

echo "==== ci.sh: both legs passed ===="
